package opinion

import (
	"strings"
	"testing"
	"time"

	"lawgate/internal/court"
	"lawgate/internal/investigation"
	"lawgate/internal/legal"
)

func testClock() func() time.Time {
	t := time.Date(2012, time.May, 1, 9, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Minute)
		return t
	}
}

func deviceAction(name string) legal.Action {
	return legal.Action{
		Name:   name,
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingStored,
		Data:   legal.DataDeviceContents,
		Source: legal.SourceTargetDevice,
	}
}

func TestWriteMixedOutcomes(t *testing.T) {
	c := investigation.NewCase("mixed", investigation.WithCaseClock(testClock()))
	c.AddFact(court.Fact{Kind: court.FactIPAttribution, Description: "attack traced to the suspect's IP"})
	if _, err := c.ApplyFor(legal.ProcessSearchWarrant, "12 Oak St", []string{"computers"}); err != nil {
		t.Fatal(err)
	}
	lawful, err := c.Acquire("laptop", []byte("disk"), deviceAction("seize-laptop"))
	if err != nil {
		t.Fatal(err)
	}
	_ = lawful
	// A Kyllo scan conducted in reliance on no order (the laptop warrant
	// does not reach the home's interior): suppressed, with a derived
	// item falling.
	scan := deviceAction("thermal-scan")
	scan.Tech = &legal.SpecializedTech{RevealsHomeInterior: true}
	tainted, err := c.AcquireUnder(nil, "", "thermal image", []byte("heat"), scan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire("follow-up inventory", []byte("items"), legal.Action{
		Name:   "follow-up",
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingStored,
		Data:   legal.DataDeviceContents,
		Source: legal.SourceSeizedDevice,
	}, tainted.ID); err != nil {
		t.Fatal(err)
	}

	op := Write(c, "United States v. Doe, No. 12-cr-0217")
	for _, want := range []string{
		"# United States v. Doe",
		"### I. Background",
		"attack traced to the suspect's IP",
		"### II. Process Obtained",
		"search warrant issued on a showing of probable cause",
		`"12 Oak St"`,
		"### III. Discussion",
		"**Exhibit EV-0001",
		"**DENIED**",
		"**SUPPRESSED**",
		"fruit of the poisonous tree",
		"Kyllo v. United States",
		"### IV. Disposition",
		"1 are admitted and 2 are suppressed",
		"SO ORDERED.",
	} {
		if !strings.Contains(op, want) {
			t.Errorf("opinion missing %q", want)
		}
	}
}

func TestWriteEmptyCase(t *testing.T) {
	c := investigation.NewCase("empty", investigation.WithCaseClock(testClock()))
	op := Write(c, "In re Nothing")
	for _, want := range []string{
		"without articulated facts",
		"No warrant, court order, or subpoena issued",
		"No evidence was offered",
		"0 exhibits",
	} {
		if !strings.Contains(op, want) {
			t.Errorf("opinion missing %q", want)
		}
	}
}

func TestWriteFlowsIntegration(t *testing.T) {
	// The Kyllo demo's opinion must suppress both exhibits.
	res, err := investigation.RunKylloDemo(investigation.WithCaseClock(testClock()))
	if err != nil {
		t.Fatal(err)
	}
	op := Write(res.Case, "United States v. Kyllo-Redux")
	if !strings.Contains(op, "0 are admitted and 2 are suppressed") {
		t.Errorf("kyllo opinion disposition wrong:\n%s", op)
	}

	// The drive exam with a second warrant admits everything.
	drive, err := investigation.RunDriveExam(true, investigation.WithCaseClock(testClock()))
	if err != nil {
		t.Fatal(err)
	}
	op = Write(drive.Case, "United States v. Crist-Compliant")
	if !strings.Contains(op, "0 are suppressed") {
		t.Errorf("drive opinion disposition wrong")
	}
	if !strings.Contains(op, "hash-search results") {
		t.Error("drive opinion missing the hash-search exhibit")
	}
}

func TestArticle(t *testing.T) {
	if article("none") != "no process" {
		t.Errorf("article(none) = %q", article("none"))
	}
	if article("subpoena") != "a subpoena" {
		t.Errorf("article(subpoena) = %q", article("subpoena"))
	}
}
