package evidence

import "lawgate/internal/ledger"

// tamper is a test-only seam: it rewrites the note of the i-th custody
// entry without resealing, by reconstructing the backing ledger from
// records with one field forged. Production code has no mutation path —
// the seam lives in the test binary only.
func (l *CustodyLog) tamper(i int, note string) {
	recs := l.Ledger().Records()
	n := -1
	for j := range recs {
		if recs[j].Kind != ledger.KindCustody {
			continue
		}
		n++
		if n == i {
			recs[j].Note = note
			break
		}
	}
	l.led = ledger.Reconstruct(recs)
}
