package evidence

import (
	"errors"
	"testing"

	"lawgate/internal/legal"
)

func lawfulSeizedDeviceAction(name string) legal.Action {
	return legal.Action{
		Name:   name,
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingStored,
		Data:   legal.DataDeviceContents,
		Source: legal.SourceSeizedDevice,
	}
}

func warrantRequiredAction(name string) legal.Action {
	return legal.Action{
		Name:   name,
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingStored,
		Data:   legal.DataDeviceContents,
		Source: legal.SourceTargetDevice,
	}
}

func TestLockerAcquire(t *testing.T) {
	l := NewLocker(WithClock(testClock()))
	it, err := l.Acquire(AcquireRequest{
		Description: "disk image",
		Content:     []byte("image-bytes"),
		Custodian:   "agent-a",
		Action:      lawfulSeizedDeviceAction("image-drive"),
		Held:        legal.ProcessNone,
	})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if it.ID != "EV-0001" {
		t.Errorf("first item ID = %q, want EV-0001", it.ID)
	}
	if it.Size != len("image-bytes") {
		t.Errorf("Size = %d", it.Size)
	}
	if it.SHA256 == "" || len(it.SHA256) != 64 {
		t.Errorf("SHA256 = %q", it.SHA256)
	}
	if !it.LawfullyAcquired() {
		t.Error("examination within authority should be lawful")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d, want 1", l.Len())
	}
	if err := l.VerifyCustody(); err != nil {
		t.Errorf("VerifyCustody: %v", err)
	}
	entries := l.Custody()
	if len(entries) != 1 || entries[0].Event != EventAcquired {
		t.Errorf("custody = %+v", entries)
	}
}

func TestLockerAcquireDefaultsHeldToNone(t *testing.T) {
	l := NewLocker(WithClock(testClock()))
	it, err := l.Acquire(AcquireRequest{
		Description: "d",
		Action:      lawfulSeizedDeviceAction("a"),
	})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if it.Held != legal.ProcessNone {
		t.Errorf("Held = %v, want ProcessNone", it.Held)
	}
	if it.Cleansing != CleansingNone {
		t.Errorf("Cleansing = %v, want CleansingNone", it.Cleansing)
	}
}

func TestLockerAcquireRejectsBadInputs(t *testing.T) {
	l := NewLocker()
	if _, err := l.Acquire(AcquireRequest{
		Action: legal.Action{Name: "invalid"},
	}); err == nil {
		t.Error("invalid action must be rejected")
	}
	if _, err := l.Acquire(AcquireRequest{
		Action: lawfulSeizedDeviceAction("a"),
		Held:   legal.Process(42),
	}); err == nil {
		t.Error("invalid held process must be rejected")
	}
	if _, err := l.Acquire(AcquireRequest{
		Action:    lawfulSeizedDeviceAction("a"),
		Cleansing: Cleansing(42),
	}); err == nil {
		t.Error("invalid cleansing must be rejected")
	}
	if _, err := l.Acquire(AcquireRequest{
		Action:  lawfulSeizedDeviceAction("a"),
		Parents: []ID{"EV-9999"},
	}); !errors.Is(err, ErrUnknownParent) {
		t.Errorf("unknown parent error = %v, want ErrUnknownParent", err)
	}
}

func TestLockerItemLookup(t *testing.T) {
	l := NewLocker(WithClock(testClock()))
	it, err := l.Acquire(AcquireRequest{
		Description: "d",
		Action:      lawfulSeizedDeviceAction("a"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.Item(it.ID)
	if err != nil {
		t.Fatalf("Item: %v", err)
	}
	if got.Description != "d" {
		t.Errorf("Description = %q", got.Description)
	}
	if _, err := l.Item("EV-nope"); !errors.Is(err, ErrUnknownItem) {
		t.Errorf("unknown lookup error = %v, want ErrUnknownItem", err)
	}
}

func TestLockerItemsAreCopies(t *testing.T) {
	l := NewLocker(WithClock(testClock()))
	it, err := l.Acquire(AcquireRequest{
		Description: "original",
		Action:      lawfulSeizedDeviceAction("a"),
	})
	if err != nil {
		t.Fatal(err)
	}
	it.Description = "mutated"
	got, _ := l.Item(it.ID)
	if got.Description != "original" {
		t.Error("Acquire must return a copy, not internal state")
	}
	items := l.Items()
	items[0].Description = "mutated-again"
	got, _ = l.Item(it.ID)
	if got.Description != "original" {
		t.Error("Items must return copies")
	}
}

func TestLockerRecord(t *testing.T) {
	l := NewLocker(WithClock(testClock()))
	it, err := l.Acquire(AcquireRequest{
		Description: "drive",
		Custodian:   "agent-a",
		Action:      lawfulSeizedDeviceAction("a"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Record(it.ID, "lab", EventImaged, "bit-for-bit copy"); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := l.Record("EV-9999", "lab", EventImaged, ""); !errors.Is(err, ErrUnknownItem) {
		t.Errorf("Record unknown = %v, want ErrUnknownItem", err)
	}
	if err := l.VerifyCustody(); err != nil {
		t.Errorf("VerifyCustody: %v", err)
	}
	if got := len(l.Custody()); got != 2 {
		t.Errorf("custody length = %d, want 2", got)
	}
}

func TestLockerSequentialIDs(t *testing.T) {
	l := NewLocker(WithClock(testClock()))
	for i := 1; i <= 3; i++ {
		it, err := l.Acquire(AcquireRequest{
			Description: "x",
			Action:      lawfulSeizedDeviceAction("a"),
		})
		if err != nil {
			t.Fatal(err)
		}
		want := ID([]string{"EV-0001", "EV-0002", "EV-0003"}[i-1])
		if it.ID != want {
			t.Errorf("item %d ID = %q, want %q", i, it.ID, want)
		}
	}
}

func TestCleansingString(t *testing.T) {
	for c := CleansingNone; c <= CleansingAttenuation; c++ {
		if !c.Valid() {
			t.Errorf("cleansing %d should be valid", int(c))
		}
	}
	if Cleansing(9).Valid() {
		t.Error("Cleansing(9) should be invalid")
	}
	if CleansingIndependentSource.String() != "independent source" {
		t.Errorf("String = %q", CleansingIndependentSource.String())
	}
}
