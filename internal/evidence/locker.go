package evidence

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
)

// ErrUnknownItem is returned when an ID does not resolve.
var ErrUnknownItem = errors.New("evidence: unknown item")

// ErrUnknownParent is returned by Acquire when a parent ID does not
// resolve; the derivation DAG is acyclic by construction because parents
// must pre-exist.
var ErrUnknownParent = errors.New("evidence: unknown parent item")

// Locker is an evidence store: items, their derivation DAG, and a
// tamper-evident chain of custody. Every acquisition is evaluated by the
// legal engine at intake so suppression analysis can run later. A Locker
// is safe for concurrent use.
type Locker struct {
	mu      sync.Mutex
	engine  *legal.Engine
	clock   func() time.Time
	items   map[ID]*Item
	order   []ID
	custody CustodyLog
	nextSeq int
	// scratch is the reusable buffer amendment notes are built in; the
	// locker mutex serializes access.
	scratch []byte
}

// LockerOption configures a Locker.
type LockerOption func(*Locker)

// WithClock substitutes the time source (for deterministic tests).
func WithClock(clock func() time.Time) LockerOption {
	return func(l *Locker) { l.clock = clock }
}

// WithLedger points the custody log at a shared audit ledger, so
// custody events interleave with capture and court records on one
// sealed timeline. Without it the locker seals custody into a private
// ledger of its own.
func WithLedger(led *ledger.Ledger) LockerOption {
	return func(l *Locker) { l.custody.Bind(led) }
}

// NewLocker returns an empty evidence locker.
func NewLocker(opts ...LockerOption) *Locker {
	l := &Locker{
		engine: legal.NewEngine(),
		clock:  time.Now,
		items:  make(map[ID]*Item),
	}
	for _, opt := range opts {
		opt(l)
	}
	return l
}

// AcquireRequest describes one intake into the locker.
type AcquireRequest struct {
	// Description labels the item.
	Description string
	// Content is the acquired data; only its hash and size are retained
	// on the Item.
	Content []byte
	// Custodian is who acquired it.
	Custodian string
	// Action is the investigative step performed.
	Action legal.Action
	// Held is the process the investigator actually possessed.
	Held legal.Process
	// Parents are the items this one derives from (already in the
	// locker).
	Parents []ID
	// Cleansing optionally purges inherited taint.
	Cleansing Cleansing
}

// Acquire evaluates the acquisition against the legal engine, stores the
// item, and appends a custody entry. Acquire never refuses an illegal
// acquisition — the paper's point is that such evidence is collected and
// then suppressed — but the ruling is recorded for Assess.
func (l *Locker) Acquire(req AcquireRequest) (*Item, error) {
	if req.Held == 0 {
		req.Held = legal.ProcessNone
	}
	if !req.Held.Valid() {
		return nil, fmt.Errorf("evidence: invalid held process %d", int(req.Held))
	}
	if req.Cleansing == 0 {
		req.Cleansing = CleansingNone
	}
	if !req.Cleansing.Valid() {
		return nil, fmt.Errorf("evidence: invalid cleansing doctrine %d", int(req.Cleansing))
	}
	ruling, err := l.engine.Evaluate(req.Action)
	if err != nil {
		return nil, fmt.Errorf("evidence: evaluating acquisition: %w", err)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range req.Parents {
		if _, ok := l.items[p]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownParent, p)
		}
	}
	l.nextSeq++
	id := ID(fmt.Sprintf("EV-%04d", l.nextSeq))
	it := &Item{
		ID:          id,
		Description: req.Description,
		SHA256:      hashContent(req.Content),
		Size:        len(req.Content),
		AcquiredAt:  l.clock(),
		Acquisition: req.Action,
		Held:        req.Held,
		Ruling:      ruling,
		Parents:     append([]ID(nil), req.Parents...),
		Cleansing:   req.Cleansing,
	}
	l.items[id] = it
	l.order = append(l.order, id)
	e := l.custody.Append(it.AcquiredAt, req.Custodian, EventAcquired, id, req.Description)
	it.LedgerSeq = uint64(e.Seq)
	return cloneItem(it), nil
}

// AmendAcquisition corrects the legal facts of a recorded acquisition —
// a consent later revoked, a scope escalation discovered during review,
// an exigency that had already lapsed — by applying an ActionDelta and
// re-ruling the item incrementally from its stored ruling. The custody
// chain gains an EventAmended entry whose note carries the delta's
// canonical encoding plus the ruling now in force, so the amendment is
// as tamper-evident as the original intake. The updated item is
// returned; suppression analysis (Assess) sees the amended ruling.
func (l *Locker) AmendAcquisition(id ID, custodian string, d legal.ActionDelta) (*Item, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	it, ok := l.items[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownItem, id)
	}
	ruling, err := l.engine.EvaluateDelta(&it.Ruling, d)
	if err != nil {
		return nil, fmt.Errorf("evidence: amending acquisition of %q: %w", id, err)
	}
	it.Acquisition = ruling.Action
	it.Ruling = ruling
	l.scratch = d.AppendEncoding(l.scratch[:0])
	l.scratch = append(l.scratch, " -> "...)
	l.scratch = append(l.scratch, ruling.Required.String()...)
	l.scratch = append(l.scratch, " ("...)
	l.scratch = append(l.scratch, ruling.Regime.String()...)
	l.scratch = append(l.scratch, ')')
	l.custody.Append(l.clock(), custodian, EventAmended, id, string(l.scratch))
	return cloneItem(it), nil
}

// Record appends a non-acquisition custody event (transfer, examination,
// imaging, return) for an existing item.
func (l *Locker) Record(id ID, custodian string, event CustodyEvent, note string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.items[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownItem, id)
	}
	l.custody.Append(l.clock(), custodian, event, id, note)
	return nil
}

// Item returns a copy of the item with the given ID.
func (l *Locker) Item(id ID) (*Item, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	it, ok := l.items[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownItem, id)
	}
	return cloneItem(it), nil
}

// Items returns copies of all items in acquisition order.
func (l *Locker) Items() []*Item {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Item, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, cloneItem(l.items[id]))
	}
	return out
}

// Len returns the number of items held.
func (l *Locker) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.items)
}

// Custody returns a copy of the custody chain entries.
func (l *Locker) Custody() []CustodyEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.custody.Entries()
}

// VerifyCustody audits the ledger backing the custody chain.
func (l *Locker) VerifyCustody() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.custody.Verify()
}

// Ledger returns the audit ledger backing the custody chain — the
// shared one if WithLedger was used, otherwise the locker's private
// ledger.
func (l *Locker) Ledger() *ledger.Ledger {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.custody.Ledger()
}

func cloneItem(it *Item) *Item {
	cp := *it
	cp.Parents = append([]ID(nil), it.Parents...)
	return &cp
}
