package evidence

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"lawgate/internal/legal"
)

// ID identifies an evidence item within a Locker.
type ID string

// Cleansing identifies a doctrine that purges derivative taint from an
// item even though a parent was illegally obtained.
type Cleansing int

// Cleansing doctrines.
const (
	// CleansingNone: the item inherits any parent taint.
	CleansingNone Cleansing = iota + 1
	// CleansingIndependentSource: the item was also obtained through a
	// lawful source independent of the tainted one.
	CleansingIndependentSource
	// CleansingInevitableDiscovery: the item would inevitably have been
	// discovered by lawful means.
	CleansingInevitableDiscovery
	// CleansingAttenuation: the connection to the illegality is so
	// attenuated that the taint has dissipated.
	CleansingAttenuation
)

var cleansingNames = map[Cleansing]string{
	CleansingNone:                "none",
	CleansingIndependentSource:   "independent source",
	CleansingInevitableDiscovery: "inevitable discovery",
	CleansingAttenuation:         "attenuation",
}

// String returns the human-readable doctrine name.
func (c Cleansing) String() string {
	if s, ok := cleansingNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Cleansing(%d)", int(c))
}

// Valid reports whether c is a defined cleansing doctrine.
func (c Cleansing) Valid() bool {
	_, ok := cleansingNames[c]
	return ok
}

// Item is one piece of evidence: content identified by hash, the
// acquisition that produced it, the process actually held, and links to
// the items it was derived from.
type Item struct {
	// ID is the Locker-assigned identifier.
	ID ID
	// Description is a short human-readable label.
	Description string
	// SHA256 is the hex-encoded content hash.
	SHA256 string
	// Size is the content length in bytes.
	Size int
	// AcquiredAt is the acquisition time recorded by the Locker clock.
	AcquiredAt time.Time
	// Acquisition is the investigative step that produced the item.
	Acquisition legal.Action
	// Held is the legal process the investigator actually possessed at
	// acquisition time.
	Held legal.Process
	// Ruling is the engine's determination for the acquisition.
	Ruling legal.Ruling
	// Parents are the items this one was derived from.
	Parents []ID
	// Cleansing, when not CleansingNone, purges inherited taint.
	Cleansing Cleansing
	// LedgerSeq is the sequence number of the acquisition record in the
	// audit ledger; the record's inclusion proof anchors the item to the
	// ledger root.
	LedgerSeq uint64
}

// LawfullyAcquired reports whether the process held at acquisition time
// satisfied what the acquisition legally required. It says nothing about
// derivative taint; see Locker.Assess for the full analysis.
func (it *Item) LawfullyAcquired() bool {
	return it.Held.Satisfies(it.Ruling.Required)
}

// hashContent returns the hex SHA-256 of content.
func hashContent(content []byte) string {
	sum := sha256.Sum256(content)
	return hex.EncodeToString(sum[:])
}
