package evidence

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func testClock() func() time.Time {
	t0 := time.Date(2012, time.March, 1, 9, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Minute)
	}
}

func TestCustodyAppendAndVerify(t *testing.T) {
	var log CustodyLog
	clock := testClock()
	log.Append(clock(), "agent-smith", EventAcquired, "EV-0001", "seized laptop")
	log.Append(clock(), "agent-smith", EventImaged, "EV-0001", "created image")
	log.Append(clock(), "lab-tech", EventTransferred, "EV-0001", "to lab")
	if log.Len() != 3 {
		t.Fatalf("Len = %d, want 3", log.Len())
	}
	if err := log.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	entries := log.Entries()
	if entries[0].PrevHash != "" {
		t.Error("first entry must have empty PrevHash")
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].PrevHash != entries[i-1].Hash {
			t.Errorf("entry %d back-link broken", i)
		}
	}
}

func TestCustodyTamperDetected(t *testing.T) {
	var log CustodyLog
	clock := testClock()
	for i := 0; i < 5; i++ {
		log.Append(clock(), "agent", EventExamined, "EV-0001", "routine")
	}
	log.tamper(2, "altered note")
	err := log.Verify()
	if !errors.Is(err, ErrCustodyTampered) {
		t.Fatalf("Verify after tamper = %v, want ErrCustodyTampered", err)
	}
}

func TestCustodyEmptyVerifies(t *testing.T) {
	var log CustodyLog
	if err := log.Verify(); err != nil {
		t.Fatalf("empty log must verify: %v", err)
	}
}

func TestCustodyForItem(t *testing.T) {
	var log CustodyLog
	clock := testClock()
	log.Append(clock(), "a", EventAcquired, "EV-0001", "")
	log.Append(clock(), "a", EventAcquired, "EV-0002", "")
	log.Append(clock(), "b", EventExamined, "EV-0001", "")
	got := log.ForItem("EV-0001")
	if len(got) != 2 {
		t.Fatalf("ForItem returned %d entries, want 2", len(got))
	}
	if got[0].Event != EventAcquired || got[1].Event != EventExamined {
		t.Errorf("ForItem order wrong: %v, %v", got[0].Event, got[1].Event)
	}
}

func TestCustodyEntriesAreCopies(t *testing.T) {
	var log CustodyLog
	log.Append(time.Now(), "a", EventAcquired, "EV-0001", "original")
	entries := log.Entries()
	entries[0].Note = "mutated"
	if log.Entries()[0].Note != "original" {
		t.Error("Entries must return a copy")
	}
}

func TestCustodyEventString(t *testing.T) {
	for e := EventAcquired; e <= EventReturned; e++ {
		if s := e.String(); s == "" || s[0] == 'C' {
			t.Errorf("event %d has placeholder string %q", int(e), s)
		}
	}
	if CustodyEvent(99).String() != "CustodyEvent(99)" {
		t.Errorf("unexpected placeholder: %q", CustodyEvent(99).String())
	}
}

// Property: any single-field mutation of any entry breaks verification.
func TestCustodyTamperPropertyQuick(t *testing.T) {
	build := func(notes []string) *CustodyLog {
		var log CustodyLog
		clock := testClock()
		for _, n := range notes {
			log.Append(clock(), "agent", EventExamined, "EV-0001", n)
		}
		return &log
	}
	f := func(raw []string, idx uint8, newNote string) bool {
		if len(raw) == 0 {
			return true
		}
		log := build(raw)
		i := int(idx) % len(raw)
		if raw[i] == newNote {
			return true // not a mutation
		}
		log.tamper(i, newNote)
		return errors.Is(log.Verify(), ErrCustodyTampered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("custody tamper property violated: %v", err)
	}
}
