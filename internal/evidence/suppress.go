package evidence

import (
	"fmt"

	"lawgate/internal/ledger"
)

// Status is the suppression outcome for one item.
type Status int

// Suppression statuses.
const (
	// StatusAdmissible: lawfully acquired and untainted.
	StatusAdmissible Status = iota + 1
	// StatusSuppressed: the acquisition itself violated the governing
	// law (the process held did not satisfy the process required).
	StatusSuppressed
	// StatusFruit: lawfully acquired in itself, but derived from
	// suppressed evidence — fruit of the poisonous tree.
	StatusFruit
)

var statusNames = map[Status]string{
	StatusAdmissible: "admissible",
	StatusSuppressed: "suppressed",
	StatusFruit:      "suppressed (fruit of the poisonous tree)",
}

// String returns the human-readable status.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Assessment is the suppression analysis for one item. Beyond the
// outcome it carries the item's anchor into the audit ledger: the
// acquisition record's sequence number, chain hash, and an inclusion
// proof a court can check against the ledger root with
// ledger.VerifyProof — provenance by proof, not by bare flag.
type Assessment struct {
	// ItemID identifies the item.
	ItemID ID
	// Status is the outcome.
	Status Status
	// TaintSource, for StatusFruit, is the nearest suppressed ancestor.
	TaintSource ID
	// Reasons explains the outcome.
	Reasons []string
	// LedgerSeq is the acquisition record's ledger sequence number.
	LedgerSeq uint64
	// RecordHash is the acquisition record's chain hash.
	RecordHash [32]byte
	// Proof is the inclusion proof for the acquisition record against
	// the ledger root at Proof.Size records.
	Proof ledger.Proof
}

// Admissible reports whether the item survives the hearing.
func (a Assessment) Admissible() bool { return a.Status == StatusAdmissible }

// Assess runs the exclusionary-rule analysis over the whole locker:
//
//  1. An item whose held process fails to satisfy its required process is
//     suppressed.
//  2. Taint propagates to descendants through the derivation DAG.
//  3. A cleansing doctrine (independent source, inevitable discovery,
//     attenuation) on an item blocks inherited taint at that item — but
//     never cures an item's own unlawful acquisition.
//
// Results are returned in acquisition order.
func (l *Locker) Assess() []Assessment {
	l.mu.Lock()
	defer l.mu.Unlock()

	led := l.custody.Ledger()
	size := uint64(led.Len())
	status := make(map[ID]*Assessment, len(l.order))
	// Items are stored in acquisition order and parents must pre-exist,
	// so a single forward pass is a valid topological traversal.
	for _, id := range l.order {
		it := l.items[id]
		a := &Assessment{ItemID: id, Status: StatusAdmissible, LedgerSeq: it.LedgerSeq}
		if r, err := led.Record(it.LedgerSeq); err == nil {
			a.RecordHash = r.Hash
		}
		if p, err := led.ProofAt(it.LedgerSeq, size); err == nil {
			a.Proof = p
		}
		if !it.Held.Satisfies(it.Ruling.Required) {
			a.Status = StatusSuppressed
			a.Reasons = append(a.Reasons, fmt.Sprintf(
				"acquisition required %s but investigator held %s (%s)",
				it.Ruling.Required, it.Held, it.Ruling.Regime))
		} else {
			a.Reasons = append(a.Reasons, fmt.Sprintf(
				"acquisition lawful: required %s, held %s", it.Ruling.Required, it.Held))
			// Inherited taint.
			for _, p := range it.Parents {
				pa := status[p]
				if pa == nil || pa.Status == StatusAdmissible {
					continue
				}
				if it.Cleansing != CleansingNone {
					a.Reasons = append(a.Reasons, fmt.Sprintf(
						"parent %s suppressed, but taint purged by %s", p, it.Cleansing))
					continue
				}
				a.Status = StatusFruit
				a.TaintSource = p
				a.Reasons = append(a.Reasons, fmt.Sprintf(
					"derived from suppressed item %s", p))
				break
			}
		}
		status[id] = a
	}

	out := make([]Assessment, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, *status[id])
	}
	return out
}

// AdmissibleItems returns copies of the items that survive Assess, in
// acquisition order.
func (l *Locker) AdmissibleItems() []*Item {
	assessments := l.Assess()
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Item
	for _, a := range assessments {
		if a.Admissible() {
			out = append(out, cloneItem(l.items[a.ItemID]))
		}
	}
	return out
}
