package evidence

import (
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"lawgate/internal/ledger"
)

// ErrCustodyTampered is returned by CustodyLog.Verify when the backing
// ledger does not validate.
var ErrCustodyTampered = errors.New("evidence: custody chain tampered")

// CustodyEvent classifies what happened to an item.
type CustodyEvent int

// Custody events.
const (
	// EventAcquired records initial acquisition.
	EventAcquired CustodyEvent = iota + 1
	// EventTransferred records a hand-off to another custodian.
	EventTransferred
	// EventExamined records a forensic examination.
	EventExamined
	// EventImaged records creation of a forensic image.
	EventImaged
	// EventReturned records return to the owner.
	EventReturned
	// EventAmended records a correction to the recorded acquisition —
	// the legal facts changed (consent revoked, scope escalated,
	// exigency lapsed) and the item was re-ruled from the delta.
	EventAmended
)

var custodyEventNames = map[CustodyEvent]string{
	EventAcquired:    "acquired",
	EventTransferred: "transferred",
	EventExamined:    "examined",
	EventImaged:      "imaged",
	EventReturned:    "returned",
	EventAmended:     "amended",
}

// String returns the human-readable event name.
func (e CustodyEvent) String() string {
	if s, ok := custodyEventNames[e]; ok {
		return s
	}
	return fmt.Sprintf("CustodyEvent(%d)", int(e))
}

// CustodyEntry is the custody-typed view of one ledger record. The hex
// hash fields are decoded presentation; the authoritative digests are
// the raw [32]byte values on the underlying ledger.Record.
type CustodyEntry struct {
	// Seq is the record's sequence number in the backing ledger. On a
	// ledger shared with other audit producers (capture, court), custody
	// sequence numbers are not contiguous.
	Seq int
	// At is the event time.
	At time.Time
	// Custodian names who held or acted on the item.
	Custodian string
	// Event classifies the action.
	Event CustodyEvent
	// ItemID is the evidence item concerned.
	ItemID ID
	// Note is free-form commentary.
	Note string
	// PrevHash is the hex chain hash of the preceding ledger record
	// ("" for the ledger's first record).
	PrevHash string
	// Hash is the hex chain hash of this record.
	Hash string
}

// CustodyLog is the chain of custody as a typed view over a
// tamper-evident, hash-chained audit ledger. The zero value is an
// empty, usable log backed by its own private ledger; Bind points the
// view at a ledger shared with other audit producers so every custody
// event lands on the case's single sealed timeline.
type CustodyLog struct {
	led *ledger.Ledger
}

// Bind points the log at a shared backing ledger. Call before the
// first Append; entries already sealed into a previous backing ledger
// are not migrated.
func (l *CustodyLog) Bind(led *ledger.Ledger) { l.led = led }

// Ledger returns the backing ledger, creating a private one on first
// use.
func (l *CustodyLog) Ledger() *ledger.Ledger {
	if l.led == nil {
		l.led = ledger.New()
	}
	return l.led
}

// entryFromRecord decodes the custody view of one ledger record.
func entryFromRecord(r *ledger.Record) CustodyEntry {
	e := CustodyEntry{
		Seq:       int(r.Seq),
		At:        time.Unix(0, r.At).UTC(),
		Custodian: r.Actor,
		Event:     CustodyEvent(r.Code),
		ItemID:    ID(r.Subject),
		Note:      r.Note,
		Hash:      hex.EncodeToString(r.Hash[:]),
	}
	if r.Prev != [32]byte{} {
		e.PrevHash = hex.EncodeToString(r.Prev[:])
	}
	return e
}

// Append seals a custody event into the backing ledger and returns its
// custody view.
func (l *CustodyLog) Append(at time.Time, custodian string, event CustodyEvent, itemID ID, note string) CustodyEntry {
	led := l.Ledger()
	seq := led.Append(ledger.Draft{
		At:      at.UnixNano(),
		Kind:    ledger.KindCustody,
		Code:    uint32(event),
		Actor:   custodian,
		Subject: string(itemID),
		Note:    note,
	})
	r, err := led.Record(seq)
	if err != nil {
		// Unreachable: the record was just sealed under the ledger lock.
		panic(err)
	}
	return entryFromRecord(&r)
}

// Len returns the number of custody entries (custody-kind records in
// the backing ledger).
func (l *CustodyLog) Len() int {
	if l.led == nil {
		return 0
	}
	n := 0
	for _, r := range l.led.Records() {
		if r.Kind == ledger.KindCustody {
			n++
		}
	}
	return n
}

// Entries returns the custody view of the backing ledger: every
// custody-kind record, in ledger order.
func (l *CustodyLog) Entries() []CustodyEntry {
	if l.led == nil {
		return []CustodyEntry{}
	}
	recs := l.led.Records()
	out := make([]CustodyEntry, 0, len(recs))
	for i := range recs {
		if recs[i].Kind == ledger.KindCustody {
			out = append(out, entryFromRecord(&recs[i]))
		}
	}
	return out
}

// ForItem returns the entries concerning one item, in order.
func (l *CustodyLog) ForItem(id ID) []CustodyEntry {
	var out []CustodyEntry
	for _, e := range l.Entries() {
		if e.ItemID == id {
			out = append(out, e)
		}
	}
	return out
}

// Verify audits the backing ledger — every chain link, record hash,
// and checkpoint-index leaf — and returns ErrCustodyTampered (wrapping
// the ledger's TamperError, which carries the first bad sequence
// number) on any failure. On a shared ledger this covers the whole
// audit trail, not just custody records: a tampered court or capture
// record invalidates custody too, which is exactly the point of a
// single sealed timeline.
func (l *CustodyLog) Verify() error {
	if l.led == nil {
		return nil
	}
	if err := l.led.Verify(); err != nil {
		return fmt.Errorf("%w: %w", ErrCustodyTampered, err)
	}
	return nil
}
