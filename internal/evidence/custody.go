package evidence

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"time"
)

// ErrCustodyTampered is returned by CustodyLog.Verify when the hash chain
// does not validate.
var ErrCustodyTampered = errors.New("evidence: custody chain tampered")

// CustodyEvent classifies what happened to an item.
type CustodyEvent int

// Custody events.
const (
	// EventAcquired records initial acquisition.
	EventAcquired CustodyEvent = iota + 1
	// EventTransferred records a hand-off to another custodian.
	EventTransferred
	// EventExamined records a forensic examination.
	EventExamined
	// EventImaged records creation of a forensic image.
	EventImaged
	// EventReturned records return to the owner.
	EventReturned
	// EventAmended records a correction to the recorded acquisition —
	// the legal facts changed (consent revoked, scope escalated,
	// exigency lapsed) and the item was re-ruled from the delta.
	EventAmended
)

var custodyEventNames = map[CustodyEvent]string{
	EventAcquired:    "acquired",
	EventTransferred: "transferred",
	EventExamined:    "examined",
	EventImaged:      "imaged",
	EventReturned:    "returned",
	EventAmended:     "amended",
}

// String returns the human-readable event name.
func (e CustodyEvent) String() string {
	if s, ok := custodyEventNames[e]; ok {
		return s
	}
	return fmt.Sprintf("CustodyEvent(%d)", int(e))
}

// CustodyEntry is one link in the tamper-evident custody chain.
type CustodyEntry struct {
	// Seq is the zero-based sequence number.
	Seq int
	// At is the event time.
	At time.Time
	// Custodian names who held or acted on the item.
	Custodian string
	// Event classifies the action.
	Event CustodyEvent
	// ItemID is the evidence item concerned.
	ItemID ID
	// Note is free-form commentary.
	Note string
	// PrevHash is the hex hash of the previous entry ("" for the first).
	PrevHash string
	// Hash is the hex SHA-256 over this entry's fields and PrevHash.
	Hash string
}

// digest computes the chain hash for the entry's current field values.
func (e *CustodyEntry) digest() string {
	h := sha256.New()
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], uint64(e.Seq))
	h.Write(seq[:])
	var at [8]byte
	binary.BigEndian.PutUint64(at[:], uint64(e.At.UnixNano()))
	h.Write(at[:])
	writeLenPrefixed(h, []byte(e.Custodian))
	var ev [8]byte
	binary.BigEndian.PutUint64(ev[:], uint64(e.Event))
	h.Write(ev[:])
	writeLenPrefixed(h, []byte(e.ItemID))
	writeLenPrefixed(h, []byte(e.Note))
	writeLenPrefixed(h, []byte(e.PrevHash))
	return hex.EncodeToString(h.Sum(nil))
}

func writeLenPrefixed(h interface{ Write([]byte) (int, error) }, b []byte) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(b)))
	h.Write(n[:])
	h.Write(b)
}

// CustodyLog is an append-only, hash-chained chain of custody. The zero
// value is an empty, usable log.
type CustodyLog struct {
	entries []CustodyEntry
}

// Append adds an entry to the chain, computing its hash link, and returns
// the stored entry.
func (l *CustodyLog) Append(at time.Time, custodian string, event CustodyEvent, itemID ID, note string) CustodyEntry {
	e := CustodyEntry{
		Seq:       len(l.entries),
		At:        at,
		Custodian: custodian,
		Event:     event,
		ItemID:    itemID,
		Note:      note,
	}
	if n := len(l.entries); n > 0 {
		e.PrevHash = l.entries[n-1].Hash
	}
	e.Hash = e.digest()
	l.entries = append(l.entries, e)
	return e
}

// Len returns the number of entries.
func (l *CustodyLog) Len() int { return len(l.entries) }

// Entries returns a copy of the chain.
func (l *CustodyLog) Entries() []CustodyEntry {
	out := make([]CustodyEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// ForItem returns the entries concerning one item, in order.
func (l *CustodyLog) ForItem(id ID) []CustodyEntry {
	var out []CustodyEntry
	for _, e := range l.entries {
		if e.ItemID == id {
			out = append(out, e)
		}
	}
	return out
}

// Verify walks the chain and returns ErrCustodyTampered (wrapped with the
// first bad sequence number) if any entry's hash or back-link fails to
// validate.
func (l *CustodyLog) Verify() error {
	prev := ""
	for i := range l.entries {
		e := &l.entries[i]
		if e.Seq != i {
			return fmt.Errorf("%w: entry %d has sequence %d", ErrCustodyTampered, i, e.Seq)
		}
		if e.PrevHash != prev {
			return fmt.Errorf("%w: entry %d back-link mismatch", ErrCustodyTampered, i)
		}
		if e.digest() != e.Hash {
			return fmt.Errorf("%w: entry %d hash mismatch", ErrCustodyTampered, i)
		}
		prev = e.Hash
	}
	return nil
}

// tamper is a test hook: it mutates the note of entry i without rehashing.
// Kept unexported so production code cannot misuse it; tests in this
// package reach it directly.
func (l *CustodyLog) tamper(i int, note string) {
	l.entries[i].Note = note
}
