package evidence

import (
	"testing"
	"testing/quick"

	"lawgate/internal/legal"
)

// buildChain acquires a linear chain of n items; item i is derived from
// item i-1. The held slice gives the process held for each acquisition of
// the warrant-required action.
func buildChain(t *testing.T, held []legal.Process, cleansing []Cleansing) *Locker {
	t.Helper()
	l := NewLocker(WithClock(testClock()))
	var prev ID
	for i, h := range held {
		req := AcquireRequest{
			Description: "link",
			Custodian:   "agent",
			Action:      warrantRequiredAction("step"),
			Held:        h,
		}
		if i > 0 {
			req.Parents = []ID{prev}
		}
		if cleansing != nil {
			req.Cleansing = cleansing[i]
		}
		it, err := l.Acquire(req)
		if err != nil {
			t.Fatal(err)
		}
		prev = it.ID
	}
	return l
}

func TestAssessAllLawful(t *testing.T) {
	l := buildChain(t, []legal.Process{
		legal.ProcessSearchWarrant,
		legal.ProcessSearchWarrant,
		legal.ProcessSearchWarrant,
	}, nil)
	for _, a := range l.Assess() {
		if !a.Admissible() {
			t.Errorf("item %s: status %v, want admissible; reasons %v", a.ItemID, a.Status, a.Reasons)
		}
	}
	if got := len(l.AdmissibleItems()); got != 3 {
		t.Errorf("AdmissibleItems = %d, want 3", got)
	}
}

func TestAssessDirectSuppression(t *testing.T) {
	// Warrantless search of a device with REP: suppressed.
	l := buildChain(t, []legal.Process{legal.ProcessNone}, nil)
	as := l.Assess()
	if as[0].Status != StatusSuppressed {
		t.Errorf("status = %v, want suppressed", as[0].Status)
	}
}

func TestAssessStrongerProcessSuffices(t *testing.T) {
	// A wiretap order more than satisfies a warrant requirement.
	l := buildChain(t, []legal.Process{legal.ProcessWiretapOrder}, nil)
	if as := l.Assess(); !as[0].Admissible() {
		t.Errorf("wiretap order should satisfy warrant requirement: %v", as[0].Reasons)
	}
}

func TestAssessFruitOfThePoisonousTree(t *testing.T) {
	// Illegal root, lawful descendants: all fall.
	l := buildChain(t, []legal.Process{
		legal.ProcessNone,          // illegal
		legal.ProcessSearchWarrant, // lawful in itself
		legal.ProcessSearchWarrant, // lawful in itself
	}, nil)
	as := l.Assess()
	if as[0].Status != StatusSuppressed {
		t.Fatalf("root status = %v, want suppressed", as[0].Status)
	}
	for _, a := range as[1:] {
		if a.Status != StatusFruit {
			t.Errorf("item %s: status = %v, want fruit", a.ItemID, a.Status)
		}
	}
	// Taint source of the first fruit is the root.
	if as[1].TaintSource != as[0].ItemID {
		t.Errorf("taint source = %v, want %v", as[1].TaintSource, as[0].ItemID)
	}
	if got := len(l.AdmissibleItems()); got != 0 {
		t.Errorf("AdmissibleItems = %d, want 0", got)
	}
}

func TestAssessIndependentSourceBreaksTaint(t *testing.T) {
	l := buildChain(t,
		[]legal.Process{
			legal.ProcessNone,          // illegal root
			legal.ProcessSearchWarrant, // cleansed link
			legal.ProcessSearchWarrant, // downstream of cleansed link
		},
		[]Cleansing{CleansingNone, CleansingIndependentSource, CleansingNone},
	)
	as := l.Assess()
	if as[0].Status != StatusSuppressed {
		t.Fatalf("root must be suppressed")
	}
	if !as[1].Admissible() {
		t.Errorf("independent source must purge taint: %v", as[1].Reasons)
	}
	if !as[2].Admissible() {
		t.Errorf("descendant of cleansed item must be admissible: %v", as[2].Reasons)
	}
}

func TestCleansingDoesNotCureOwnIllegality(t *testing.T) {
	l := NewLocker(WithClock(testClock()))
	it, err := l.Acquire(AcquireRequest{
		Description: "warrantless grab",
		Action:      warrantRequiredAction("grab"),
		Held:        legal.ProcessNone,
		Cleansing:   CleansingInevitableDiscovery,
	})
	if err != nil {
		t.Fatal(err)
	}
	as := l.Assess()
	if as[0].ItemID != it.ID || as[0].Status != StatusSuppressed {
		t.Errorf("cleansing must not cure the item's own unlawful acquisition: %v", as[0])
	}
}

func TestAssessDiamondDerivation(t *testing.T) {
	// Diamond: root (illegal) -> a, b -> joined. Taint reaches joined via
	// both paths; cleansing only one intermediate is not enough.
	l := NewLocker(WithClock(testClock()))
	root, err := l.Acquire(AcquireRequest{
		Description: "root", Action: warrantRequiredAction("root"), Held: legal.ProcessNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.Acquire(AcquireRequest{
		Description: "a", Action: warrantRequiredAction("a"),
		Held: legal.ProcessSearchWarrant, Parents: []ID{root.ID},
		Cleansing: CleansingAttenuation,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Acquire(AcquireRequest{
		Description: "b", Action: warrantRequiredAction("b"),
		Held: legal.ProcessSearchWarrant, Parents: []ID{root.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	joined, err := l.Acquire(AcquireRequest{
		Description: "joined", Action: warrantRequiredAction("joined"),
		Held: legal.ProcessSearchWarrant, Parents: []ID{a.ID, b.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	status := make(map[ID]Assessment)
	for _, as := range l.Assess() {
		status[as.ItemID] = as
	}
	if status[a.ID].Status != StatusAdmissible {
		t.Errorf("a: %v, want admissible (attenuated)", status[a.ID].Status)
	}
	if status[b.ID].Status != StatusFruit {
		t.Errorf("b: %v, want fruit", status[b.ID].Status)
	}
	if status[joined.ID].Status != StatusFruit {
		t.Errorf("joined: %v, want fruit via b", status[joined.ID].Status)
	}
	if status[joined.ID].TaintSource != b.ID {
		t.Errorf("joined taint source = %v, want %v", status[joined.ID].TaintSource, b.ID)
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{StatusAdmissible, "admissible"},
		{StatusSuppressed, "suppressed"},
		{StatusFruit, "suppressed (fruit of the poisonous tree)"},
		{Status(9), "Status(9)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Status(%d).String() = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

// Property: in a linear chain with no cleansing, every item at or after
// the first illegal acquisition is inadmissible, and every item before it
// is admissible.
func TestTaintPropagationProperty(t *testing.T) {
	f := func(lawfulMask uint8, n uint8) bool {
		length := int(n)%6 + 1
		held := make([]legal.Process, length)
		firstBad := -1
		for i := 0; i < length; i++ {
			if lawfulMask&(1<<i) != 0 {
				held[i] = legal.ProcessSearchWarrant
			} else {
				held[i] = legal.ProcessNone
				if firstBad == -1 {
					firstBad = i
				}
			}
		}
		l := NewLocker(WithClock(testClock()))
		var prev ID
		for i, h := range held {
			req := AcquireRequest{
				Description: "link",
				Action:      warrantRequiredAction("step"),
				Held:        h,
			}
			if i > 0 {
				req.Parents = []ID{prev}
			}
			it, err := l.Acquire(req)
			if err != nil {
				return false
			}
			prev = it.ID
		}
		for i, a := range l.Assess() {
			wantAdmissible := firstBad == -1 || i < firstBad
			if a.Admissible() != wantAdmissible {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("taint propagation property violated: %v", err)
	}
}

// Property: AdmissibleItems returns exactly the items Assess admits, in
// acquisition order.
func TestAdmissibleItemsConsistentWithAssess(t *testing.T) {
	f := func(lawfulMask uint8, n uint8) bool {
		length := int(n)%6 + 1
		l := NewLocker(WithClock(testClock()))
		var prev ID
		for i := 0; i < length; i++ {
			held := legal.ProcessNone
			if lawfulMask&(1<<i) != 0 {
				held = legal.ProcessSearchWarrant
			}
			req := AcquireRequest{
				Description: "link",
				Action:      warrantRequiredAction("step"),
				Held:        held,
			}
			if i > 0 {
				req.Parents = []ID{prev}
			}
			it, err := l.Acquire(req)
			if err != nil {
				return false
			}
			prev = it.ID
		}
		admitted := map[ID]bool{}
		for _, a := range l.Assess() {
			if a.Admissible() {
				admitted[a.ItemID] = true
			}
		}
		items := l.AdmissibleItems()
		if len(items) != len(admitted) {
			return false
		}
		var lastSeq ID
		for _, it := range items {
			if !admitted[it.ID] {
				return false
			}
			if it.ID <= lastSeq {
				return false // acquisition order preserved
			}
			lastSeq = it.ID
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("admissible-set consistency violated: %v", err)
	}
}
