package evidence

import (
	"errors"
	"strings"
	"testing"

	"lawgate/internal/legal"
)

// TestAmendAcquisition re-rules an item after its legal facts change:
// the same device contents turn out to have come off the suspect's own
// machine (warrant territory), so the once-lawful acquisition becomes
// an unlawful one — and the custody chain records the amendment.
func TestAmendAcquisition(t *testing.T) {
	l := NewLocker(WithClock(testClock()))
	it, err := l.Acquire(AcquireRequest{
		Description: "disk image",
		Content:     []byte("image-bytes"),
		Custodian:   "agent-a",
		Action:      lawfulSeizedDeviceAction("image-drive"),
		Held:        legal.ProcessNone,
	})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if !it.LawfullyAcquired() {
		t.Fatal("seed acquisition should be lawful")
	}

	old := lawfulSeizedDeviceAction("image-drive")
	amended := warrantRequiredAction("image-drive")
	d := legal.Diff(&old, &amended)

	got, err := l.AmendAcquisition(it.ID, "agent-b", d)
	if err != nil {
		t.Fatalf("AmendAcquisition: %v", err)
	}
	if got.Acquisition.Source != legal.SourceTargetDevice {
		t.Errorf("amended source = %v, want target device", got.Acquisition.Source)
	}
	if got.LawfullyAcquired() {
		t.Error("amended acquisition should now be unlawful (warrant required, none held)")
	}

	// The amended ruling must equal a full evaluation of the amended
	// action on a fresh engine.
	want, err := legal.NewEngine().Evaluate(amended)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ruling.Required != want.Required || got.Ruling.Regime != want.Regime {
		t.Errorf("amended ruling = %v/%v, want %v/%v",
			got.Ruling.Required, got.Ruling.Regime, want.Required, want.Regime)
	}

	// The stored item reflects the amendment and the custody chain
	// carries a verifiable EventAmended entry naming the delta.
	stored, err := l.Item(it.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !stored.Ruling.Required.Satisfies(want.Required) {
		t.Errorf("stored ruling not updated: %v", stored.Ruling.Required)
	}
	if err := l.VerifyCustody(); err != nil {
		t.Errorf("VerifyCustody after amendment: %v", err)
	}
	entries := l.Custody()
	last := entries[len(entries)-1]
	if last.Event != EventAmended || last.Custodian != "agent-b" || last.ItemID != it.ID {
		t.Errorf("last custody entry = %+v", last)
	}
	if !strings.HasPrefix(last.Note, "delta{") || !strings.Contains(last.Note, "source:") {
		t.Errorf("amendment note = %q, want delta encoding naming the source change", last.Note)
	}
	if EventAmended.String() != "amended" {
		t.Errorf("EventAmended.String() = %q", EventAmended.String())
	}
}

// TestAmendAcquisitionErrors covers the failure modes: unknown items,
// and a delta that makes the action invalid must leave the stored item
// and custody chain untouched.
func TestAmendAcquisitionErrors(t *testing.T) {
	l := NewLocker(WithClock(testClock()))
	if _, err := l.AmendAcquisition("EV-9999", "agent-a", legal.ActionDelta{}); !errors.Is(err, ErrUnknownItem) {
		t.Errorf("unknown item error = %v, want ErrUnknownItem", err)
	}

	it, err := l.Acquire(AcquireRequest{
		Description: "disk image",
		Content:     []byte("image-bytes"),
		Custodian:   "agent-a",
		Action:      lawfulSeizedDeviceAction("image-drive"),
	})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	before := l.Custody()

	var bad legal.ActionDelta
	bad.SetActor(legal.ActorGovernment, legal.Actor(99))
	if _, err := l.AmendAcquisition(it.ID, "agent-b", bad); err == nil {
		t.Fatal("invalid delta must fail")
	}
	after, err := l.Item(it.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Acquisition.Actor != legal.ActorGovernment {
		t.Error("failed amendment mutated the stored item")
	}
	if len(l.Custody()) != len(before) {
		t.Error("failed amendment appended a custody entry")
	}
}
