// Package evidence models digital evidence handling under the exclusionary
// rule that motivates the paper: evidence gathered in violation of the
// governing law "may be suppressed in court", and evidence derived from it
// falls with it (fruit of the poisonous tree), unless a cleansing doctrine
// — independent source, inevitable discovery, or attenuation — applies.
//
// The package provides:
//
//   - Item: an evidence item carrying its content hash, the acquisition
//     Action that produced it, the legal process the investigator actually
//     held, and derivation links to parent items;
//   - Locker: an append-only evidence store whose Acquire method runs every
//     acquisition through the legal engine and records it in a
//     hash-chained chain of custody;
//   - CustodyLog: a tamper-evident, SHA-256-chained custody record; and
//   - Assess: suppression analysis that propagates taint through the
//     derivation DAG.
package evidence
