package anonet

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lawgate/internal/netsim"
)

// rig is a complete client-entry-middle-exit-server topology.
type rig struct {
	a      *Anonet
	client *Client
	relays []*Relay
	server *Server
	circ   *Circuit
}

func buildRig(t *testing.T, seed int64) *rig {
	t.Helper()
	sim := netsim.NewSimulator(seed)
	net := netsim.NewNetwork(sim)
	a := New(net)
	client, err := a.AddClient("suspect")
	if err != nil {
		t.Fatal(err)
	}
	var relays []*Relay
	for _, id := range []netsim.NodeID{"entry", "middle", "exit"} {
		r, err := a.AddRelay(id)
		if err != nil {
			t.Fatal(err)
		}
		relays = append(relays, r)
	}
	server, err := a.AddServer("webserver")
	if err != nil {
		t.Fatal(err)
	}
	chain := []netsim.NodeID{"suspect", "entry", "middle", "exit", "webserver"}
	for i := 0; i+1 < len(chain); i++ {
		if err := net.Connect(chain[i], chain[i+1], netsim.Link{Latency: 5 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	circ, err := a.BuildCircuit(client, "entry", "middle", "exit")
	if err != nil {
		t.Fatal(err)
	}
	return &rig{a: a, client: client, relays: relays, server: server, circ: circ}
}

func TestEndToEndRequestResponse(t *testing.T) {
	r := buildRig(t, 1)
	var serverGot []byte
	r.server.OnRequest = func(from netsim.NodeID, flow netsim.FlowID, data []byte) {
		serverGot = append([]byte(nil), data...)
		if err := r.server.Reply(from, flow, []byte("RESPONSE-DATA")); err != nil {
			t.Errorf("Reply: %v", err)
		}
	}
	var clientGot []byte
	var gotCirc CircuitID
	r.client.OnData = func(circ CircuitID, data []byte, _ time.Duration) {
		gotCirc = circ
		clientGot = append([]byte(nil), data...)
	}
	if err := r.client.Send(r.circ, "webserver", []byte("GET /file")); err != nil {
		t.Fatal(err)
	}
	r.a.Net().Sim().Run()
	if string(serverGot) != "GET /file" {
		t.Errorf("server received %q", serverGot)
	}
	if string(clientGot) != "RESPONSE-DATA" {
		t.Errorf("client received %q", clientGot)
	}
	if gotCirc != r.circ.ID {
		t.Errorf("circuit = %d, want %d", gotCirc, r.circ.ID)
	}
}

func TestOnionLayersDifferPerHop(t *testing.T) {
	// Tap every link: the same cell must look different at every hop
	// (each relay strips a layer), and the payload must never appear in
	// the clear before the exit-to-server hop.
	r := buildRig(t, 2)
	secret := []byte("INCRIMINATING-REQUEST")
	captures := map[netsim.NodeID][][]byte{}
	for _, id := range []netsim.NodeID{"entry", "middle", "exit", "webserver"} {
		id := id
		if err := r.a.Net().AttachTap(id, tapFunc(func(d netsim.Direction, _ time.Duration, p *netsim.Packet) {
			if d == netsim.DirInbound {
				captures[id] = append(captures[id], append([]byte(nil), p.Payload...))
			}
		})); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.client.Send(r.circ, "webserver", secret); err != nil {
		t.Fatal(err)
	}
	r.a.Net().Sim().Run()

	for _, id := range []netsim.NodeID{"entry", "middle", "exit"} {
		if len(captures[id]) != 1 {
			t.Fatalf("%s captured %d packets", id, len(captures[id]))
		}
		if bytes.Contains(captures[id][0], secret) {
			t.Errorf("plaintext visible at %s", id)
		}
	}
	if !bytes.Contains(captures["webserver"][0], secret) {
		t.Error("exit-to-server hop must carry plaintext")
	}
	if bytes.Equal(captures["entry"][0], captures["middle"][0]) {
		t.Error("entry and middle must see different ciphertexts")
	}
	if bytes.Equal(captures["middle"][0], captures["exit"][0]) {
		t.Error("middle and exit must see different ciphertexts")
	}
}

func TestBackwardTrafficEncryptedTowardClient(t *testing.T) {
	r := buildRig(t, 3)
	response := []byte("SECRET-RESPONSE-PAYLOAD")
	r.server.OnRequest = func(from netsim.NodeID, flow netsim.FlowID, _ []byte) {
		_ = r.server.Reply(from, flow, response)
	}
	var atClient [][]byte
	if err := r.a.Net().AttachTap("suspect", tapFunc(func(d netsim.Direction, _ time.Duration, p *netsim.Packet) {
		if d == netsim.DirInbound {
			atClient = append(atClient, append([]byte(nil), p.Payload...))
		}
	})); err != nil {
		t.Fatal(err)
	}
	var decrypted []byte
	r.client.OnData = func(_ CircuitID, data []byte, _ time.Duration) { decrypted = data }
	if err := r.client.Send(r.circ, "webserver", []byte("req")); err != nil {
		t.Fatal(err)
	}
	r.a.Net().Sim().Run()
	if len(atClient) != 1 {
		t.Fatalf("client inbound packets = %d", len(atClient))
	}
	if bytes.Contains(atClient[0], response) {
		t.Error("response visible in the clear on the suspect's wire")
	}
	if !bytes.Equal(decrypted, response) {
		t.Errorf("client decrypted %q", decrypted)
	}
	if len(atClient[0]) != CellSize {
		t.Errorf("cell size on wire = %d, want %d", len(atClient[0]), CellSize)
	}
}

func TestMultipleCellsDistinctKeystreams(t *testing.T) {
	// Two identical requests must produce different ciphertexts on the
	// wire (per-sequence nonces), and both round trips must decrypt.
	r := buildRig(t, 4)
	responses := 0
	r.server.OnRequest = func(from netsim.NodeID, flow netsim.FlowID, data []byte) {
		_ = r.server.Reply(from, flow, data)
	}
	r.client.OnData = func(_ CircuitID, data []byte, _ time.Duration) {
		if string(data) == "same-request" {
			responses++
		}
	}
	var wire [][]byte
	if err := r.a.Net().AttachTap("entry", tapFunc(func(d netsim.Direction, _ time.Duration, p *netsim.Packet) {
		if d == netsim.DirInbound && p.Header.Src == "suspect" {
			wire = append(wire, append([]byte(nil), p.Payload...))
		}
	})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := r.client.Send(r.circ, "webserver", []byte("same-request")); err != nil {
			t.Fatal(err)
		}
	}
	r.a.Net().Sim().Run()
	if responses != 2 {
		t.Errorf("round trips = %d, want 2", responses)
	}
	if len(wire) != 2 {
		t.Fatalf("wire captures = %d", len(wire))
	}
	if bytes.Equal(wire[0][cellHeaderLen:], wire[1][cellHeaderLen:]) {
		t.Error("identical plaintexts produced identical ciphertexts: nonce reuse")
	}
}

func TestBuildCircuitValidation(t *testing.T) {
	sim := netsim.NewSimulator(5)
	net := netsim.NewNetwork(sim)
	a := New(net)
	client, err := a.AddClient("c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddRelay("r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.BuildCircuit(nil, "r1"); !errors.Is(err, ErrBadCircuit) {
		t.Errorf("nil client err = %v", err)
	}
	if _, err := a.BuildCircuit(client); !errors.Is(err, ErrBadCircuit) {
		t.Errorf("no relays err = %v", err)
	}
	if _, err := a.BuildCircuit(client, "c"); !errors.Is(err, ErrBadCircuit) {
		t.Errorf("non-relay hop err = %v", err)
	}
	// Not linked.
	if _, err := a.BuildCircuit(client, "r1"); !errors.Is(err, ErrNotConnected) {
		t.Errorf("unlinked err = %v", err)
	}
	if err := net.Connect("c", "r1", netsim.Link{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.BuildCircuit(client, "r1"); err != nil {
		t.Errorf("single-hop circuit: %v", err)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	sim := netsim.NewSimulator(6)
	a := New(netsim.NewNetwork(sim))
	if _, err := a.AddClient("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddRelay("x"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("relay dup err = %v", err)
	}
	if _, err := a.AddServer("x"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("server dup err = %v", err)
	}
	if _, err := a.AddClient("x"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("client dup err = %v", err)
	}
}

func TestSendValidation(t *testing.T) {
	r := buildRig(t, 7)
	// Unknown circuit.
	bogus := &Circuit{ID: 999, Hops: r.circ.Hops, keys: r.circ.keys}
	if err := r.client.Send(bogus, "webserver", []byte("x")); !errors.Is(err, ErrUnknownCircuit) {
		t.Errorf("unknown circuit err = %v", err)
	}
	// Oversized payload.
	big := make([]byte, CellSize)
	if err := r.client.Send(r.circ, "webserver", big); !errors.Is(err, ErrCellTooLarge) {
		t.Errorf("oversize err = %v", err)
	}
	if err := r.server.Reply("exit", flowFor(r.circ.ID), big); !errors.Is(err, ErrCellTooLarge) {
		t.Errorf("oversize reply err = %v", err)
	}
}

func TestCellMarshalRoundTrip(t *testing.T) {
	c := cell{Circ: 77, Seq: 12345, Data: []byte("payload")}
	wire, err := c.marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != CellSize {
		t.Fatalf("wire size = %d", len(wire))
	}
	got, err := unmarshalCell(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Circ != 77 || got.Seq != 12345 || string(got.Data) != "payload" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := unmarshalCell(wire[:100]); !errors.Is(err, ErrBadCell) {
		t.Errorf("short cell err = %v", err)
	}
	// Corrupt length field.
	wire[16], wire[17] = 0xFF, 0xFF
	if _, err := unmarshalCell(wire); !errors.Is(err, ErrBadCell) {
		t.Errorf("bad length err = %v", err)
	}
}

func TestRelayPayloadRoundTrip(t *testing.T) {
	rp := relayPayload{Dst: "webserver", Data: []byte("hello")}
	b, err := rp.marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := unmarshalRelayPayload(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != "webserver" || string(got.Data) != "hello" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := unmarshalRelayPayload(nil); !errors.Is(err, ErrBadCell) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := unmarshalRelayPayload([]byte{200, 'x'}); !errors.Is(err, ErrBadCell) {
		t.Errorf("truncated err = %v", err)
	}
}

func TestApplyLayerInvolution(t *testing.T) {
	var k LayerKey
	copy(k[:], "0123456789abcdef")
	plain := []byte("some data to protect")
	enc, err := applyLayer(k, 5, 9, false, plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(enc, plain) {
		t.Error("layer must change the data")
	}
	dec, err := applyLayer(k, 5, 9, false, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, plain) {
		t.Error("applying the layer twice must restore the plaintext")
	}
	// Direction separates keystreams.
	back, err := applyLayer(k, 5, 9, true, plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(back, enc) {
		t.Error("forward and backward keystreams must differ")
	}
}

func TestRelayedCounter(t *testing.T) {
	r := buildRig(t, 8)
	r.server.OnRequest = func(from netsim.NodeID, flow netsim.FlowID, data []byte) {
		_ = r.server.Reply(from, flow, data)
	}
	if err := r.client.Send(r.circ, "webserver", []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.a.Net().Sim().Run()
	for _, relay := range r.relays {
		if relay.Relayed != 2 { // one forward, one backward
			t.Errorf("relay %s Relayed = %d, want 2", relay.ID, relay.Relayed)
		}
	}
}

type tapFunc func(netsim.Direction, time.Duration, *netsim.Packet)

func (f tapFunc) Observe(d netsim.Direction, at time.Duration, p *netsim.Packet) { f(d, at, p) }

func TestCloseCircuit(t *testing.T) {
	r := buildRig(t, 9)
	delivered := 0
	r.server.OnRequest = func(netsim.NodeID, netsim.FlowID, []byte) { delivered++ }
	if err := r.client.Send(r.circ, "webserver", []byte("before")); err != nil {
		t.Fatal(err)
	}
	r.a.Net().Sim().Run()
	if delivered != 1 {
		t.Fatalf("pre-teardown delivered = %d", delivered)
	}
	if err := r.a.CloseCircuit(r.client, r.circ); err != nil {
		t.Fatal(err)
	}
	// Sending on a closed circuit fails at the client.
	if err := r.client.Send(r.circ, "webserver", []byte("after")); !errors.Is(err, ErrUnknownCircuit) {
		t.Errorf("closed-circuit send err = %v", err)
	}
	// Double close fails.
	if err := r.a.CloseCircuit(r.client, r.circ); !errors.Is(err, ErrUnknownCircuit) {
		t.Errorf("double close err = %v", err)
	}
}

func TestCloseCircuitDropsInFlight(t *testing.T) {
	r := buildRig(t, 10)
	delivered := 0
	r.server.OnRequest = func(netsim.NodeID, netsim.FlowID, []byte) { delivered++ }
	if err := r.client.Send(r.circ, "webserver", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Tear down while the cell is still crossing the first link.
	if err := r.a.CloseCircuit(r.client, r.circ); err != nil {
		t.Fatal(err)
	}
	r.a.Net().Sim().Run()
	if delivered != 0 {
		t.Errorf("in-flight cell survived teardown: delivered = %d", delivered)
	}
}
