package anonet

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"lawgate/internal/netsim"
)

func directoryRig(t *testing.T, relayCount int) (*Anonet, *Client, []RelayInfo) {
	t.Helper()
	sim := netsim.NewSimulator(17)
	net := netsim.NewNetwork(sim)
	a := New(net)
	client, err := a.AddClient("client")
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]RelayInfo, 0, relayCount)
	ids := make([]netsim.NodeID, 0, relayCount)
	for i := 0; i < relayCount; i++ {
		id := netsim.NodeID(string(rune('a' + i)))
		if _, err := a.AddRelay(id); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, RelayInfo{ID: id, BandwidthKBps: (i + 1) * 100})
		ids = append(ids, id)
	}
	// Full mesh incl. client so any selected path telescopes.
	nodes := append([]netsim.NodeID{"client"}, ids...)
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if err := net.Connect(nodes[i], nodes[j], netsim.Link{Latency: time.Millisecond}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return a, client, entries
}

func TestDirectorySelectPathDistinct(t *testing.T) {
	a, _, entries := directoryRig(t, 6)
	d, err := a.NewDirectory(entries)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 6 {
		t.Fatalf("Len = %d", d.Len())
	}
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		path, err := d.SelectPath(r, 3)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[netsim.NodeID]bool{}
		for _, id := range path {
			if seen[id] {
				t.Fatalf("duplicate hop %q in %v", id, path)
			}
			seen[id] = true
		}
	}
}

func TestDirectoryWeightedSelection(t *testing.T) {
	// One relay with overwhelming weight must appear as a hop in almost
	// every sampled 1-relay path.
	a, _, _ := directoryRig(t, 3)
	d, err := a.NewDirectory([]RelayInfo{
		{ID: "a", BandwidthKBps: 1},
		{ID: "b", BandwidthKBps: 1},
		{ID: "c", BandwidthKBps: 10000},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	heavy := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		path, err := d.SelectPath(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		if path[0] == "c" {
			heavy++
		}
	}
	if heavy < trials*95/100 {
		t.Errorf("heavy relay selected %d/%d times; weighting ineffective", heavy, trials)
	}
}

func TestDirectoryErrors(t *testing.T) {
	a, _, entries := directoryRig(t, 3)
	if _, err := a.NewDirectory([]RelayInfo{{ID: "ghost"}}); !errors.Is(err, ErrUnknownRelay) {
		t.Errorf("unknown relay err = %v", err)
	}
	d, err := a.NewDirectory(entries)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	if _, err := d.SelectPath(r, 0); !errors.Is(err, ErrNotEnoughRelays) {
		t.Errorf("n=0 err = %v", err)
	}
	if _, err := d.SelectPath(r, 4); !errors.Is(err, ErrNotEnoughRelays) {
		t.Errorf("n>len err = %v", err)
	}
}

func TestDirectoryZeroBandwidthNormalized(t *testing.T) {
	a, _, _ := directoryRig(t, 2)
	d, err := a.NewDirectory([]RelayInfo{
		{ID: "a", BandwidthKBps: 0},
		{ID: "b", BandwidthKBps: -5},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	if _, err := d.SelectPath(r, 2); err != nil {
		t.Fatalf("selection with normalized weights: %v", err)
	}
}

func TestBuildRandomCircuitEndToEnd(t *testing.T) {
	a, client, entries := directoryRig(t, 5)
	d, err := a.NewDirectory(entries)
	if err != nil {
		t.Fatal(err)
	}
	server, err := a.AddServer("dest")
	if err != nil {
		t.Fatal(err)
	}
	circ, err := a.BuildRandomCircuit(client, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(circ.Hops) != 3 {
		t.Fatalf("hops = %v", circ.Hops)
	}
	// The exit must be able to reach the server.
	if err := a.Net().Connect(circ.Hops[2], "dest", netsim.Link{Latency: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	server.OnRequest = func(from netsim.NodeID, flow netsim.FlowID, data []byte) {
		got = data
	}
	if err := client.Send(circ, "dest", []byte("via random path")); err != nil {
		t.Fatal(err)
	}
	a.Net().Sim().Run()
	if string(got) != "via random path" {
		t.Errorf("server received %q", got)
	}
}
