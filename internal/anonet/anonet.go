package anonet

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"lawgate/internal/netsim"
)

// Network errors.
var (
	// ErrUnknownCircuit: no route state for the circuit.
	ErrUnknownCircuit = errors.New("anonet: unknown circuit")
	// ErrBadCircuit: circuit construction parameters are invalid.
	ErrBadCircuit = errors.New("anonet: invalid circuit")
	// ErrNotConnected: required underlying links are missing.
	ErrNotConnected = errors.New("anonet: nodes not connected")
	// ErrDuplicate: the node ID is already registered.
	ErrDuplicate = errors.New("anonet: duplicate node")
)

// flowFor names the netsim flow carrying a circuit's traffic.
func flowFor(circ CircuitID) netsim.FlowID {
	return netsim.FlowID(fmt.Sprintf("anon-c%d", circ))
}

// circFromFlow recovers the circuit ID from a flow name.
func circFromFlow(f netsim.FlowID) (CircuitID, bool) {
	s := string(f)
	if !strings.HasPrefix(s, "anon-c") {
		return 0, false
	}
	n, err := strconv.ParseUint(s[len("anon-c"):], 10, 64)
	if err != nil {
		return 0, false
	}
	return CircuitID(n), true
}

// Anonet is an anonymity overlay on a simulated network.
type Anonet struct {
	net      *netsim.Network
	relays   map[netsim.NodeID]*Relay
	clients  map[netsim.NodeID]*Client
	servers  map[netsim.NodeID]*Server
	nextCirc CircuitID
}

// New builds an empty anonymity overlay on net.
func New(net *netsim.Network) *Anonet {
	return &Anonet{
		net:     net,
		relays:  make(map[netsim.NodeID]*Relay),
		clients: make(map[netsim.NodeID]*Client),
		servers: make(map[netsim.NodeID]*Server),
	}
}

// Net returns the carrying network.
func (a *Anonet) Net() *netsim.Network { return a.net }

// route is one relay's per-circuit state.
type route struct {
	prev, next netsim.NodeID // next is empty at the exit
	key        LayerKey
	exitSeq    uint64 // backward cell sequence, assigned by the exit
}

// Relay is one onion router.
type Relay struct {
	// ID is the relay's node.
	ID netsim.NodeID

	a      *Anonet
	routes map[CircuitID]*route
	// Relayed counts cells forwarded in either direction.
	Relayed int64
}

// AddRelay registers a relay node.
func (a *Anonet) AddRelay(id netsim.NodeID) (*Relay, error) {
	if a.taken(id) {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, id)
	}
	r := &Relay{ID: id, a: a, routes: make(map[CircuitID]*route)}
	if err := a.net.AddNode(id, netsim.HandlerFunc(r.handle)); err != nil {
		return nil, err
	}
	a.relays[id] = r
	return r, nil
}

// Client is an anonymity-network user.
type Client struct {
	// ID is the client's node.
	ID netsim.NodeID
	// OnData receives decrypted backward traffic per circuit.
	OnData func(circ CircuitID, data []byte, at time.Duration)

	a        *Anonet
	circuits map[CircuitID]*Circuit
}

// AddClient registers a client node.
func (a *Anonet) AddClient(id netsim.NodeID) (*Client, error) {
	if a.taken(id) {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, id)
	}
	c := &Client{ID: id, a: a, circuits: make(map[CircuitID]*Circuit)}
	if err := a.net.AddNode(id, netsim.HandlerFunc(c.handle)); err != nil {
		return nil, err
	}
	a.clients[id] = c
	return c, nil
}

// Server is a destination outside the anonymity network.
type Server struct {
	// ID is the server's node.
	ID netsim.NodeID
	// OnRequest receives plaintext application data forwarded by an
	// exit; from and flow identify the return path for Reply.
	OnRequest func(from netsim.NodeID, flow netsim.FlowID, data []byte)

	a *Anonet
}

// AddServer registers a server node.
func (a *Anonet) AddServer(id netsim.NodeID) (*Server, error) {
	if a.taken(id) {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, id)
	}
	s := &Server{ID: id, a: a}
	if err := a.net.AddNode(id, netsim.HandlerFunc(s.handle)); err != nil {
		return nil, err
	}
	a.servers[id] = s
	return s, nil
}

func (a *Anonet) taken(id netsim.NodeID) bool {
	if _, ok := a.relays[id]; ok {
		return true
	}
	if _, ok := a.clients[id]; ok {
		return true
	}
	_, ok := a.servers[id]
	return ok
}

// Circuit is a client's view of a telescoped path.
type Circuit struct {
	// ID is the network-wide circuit identifier.
	ID CircuitID
	// Hops are the relays in path order (entry first).
	Hops []netsim.NodeID

	keys   []LayerKey
	fwdSeq uint64
}

// BuildCircuit telescopes a circuit from the client through the given
// relays (entry first). The underlying links client-entry and
// relay-relay must already exist. Key establishment is simulated
// out-of-band: fresh keys are drawn from the simulator's seeded RNG and
// installed at each relay, standing in for the Diffie-Hellman handshakes
// of the real protocol.
func (a *Anonet) BuildCircuit(client *Client, relays ...netsim.NodeID) (*Circuit, error) {
	if client == nil || len(relays) == 0 {
		return nil, fmt.Errorf("%w: need a client and at least one relay", ErrBadCircuit)
	}
	prev := client.ID
	for _, id := range relays {
		if _, ok := a.relays[id]; !ok {
			return nil, fmt.Errorf("%w: %q is not a relay", ErrBadCircuit, id)
		}
		if !a.net.Linked(prev, id) {
			return nil, fmt.Errorf("%w: %q-%q", ErrNotConnected, prev, id)
		}
		prev = id
	}
	a.nextCirc++
	circ := &Circuit{ID: a.nextCirc, Hops: append([]netsim.NodeID(nil), relays...)}
	rng := a.net.Sim().Rand()
	prev = client.ID
	for i, id := range relays {
		var key LayerKey
		for j := range key {
			key[j] = byte(rng.Intn(256))
		}
		circ.keys = append(circ.keys, key)
		rt := &route{prev: prev, key: key}
		if i+1 < len(relays) {
			rt.next = relays[i+1]
		}
		a.relays[id].routes[circ.ID] = rt
		prev = id
	}
	client.circuits[circ.ID] = circ
	return circ, nil
}

// CloseCircuit tears a circuit down: every relay forgets its per-circuit
// route state and the client drops its keys. Traffic still in flight is
// dropped at the first relay that no longer recognizes the circuit.
func (a *Anonet) CloseCircuit(client *Client, circ *Circuit) error {
	if _, ok := client.circuits[circ.ID]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownCircuit, circ.ID)
	}
	for _, hop := range circ.Hops {
		if r, ok := a.relays[hop]; ok {
			delete(r.routes, circ.ID)
		}
	}
	delete(client.circuits, circ.ID)
	return nil
}

// Send transmits application data through the circuit to a destination
// server adjacent to the exit. The data is wrapped in one encryption layer
// per hop.
func (c *Client) Send(circ *Circuit, dst netsim.NodeID, data []byte) error {
	if _, ok := c.circuits[circ.ID]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownCircuit, circ.ID)
	}
	inner, err := relayPayload{Dst: string(dst), Data: data}.marshal()
	if err != nil {
		return err
	}
	circ.fwdSeq++
	seq := circ.fwdSeq
	onion := inner
	for i := len(circ.keys) - 1; i >= 0; i-- {
		onion, err = applyLayer(circ.keys[i], circ.ID, seq, false, onion)
		if err != nil {
			return err
		}
	}
	wire, err := cell{Circ: circ.ID, Seq: seq, Data: onion}.marshal()
	if err != nil {
		return err
	}
	return c.a.net.Send(&netsim.Packet{
		Header: netsim.Header{
			Src: c.ID, Dst: circ.Hops[0],
			Flow: flowFor(circ.ID), Proto: netsim.ProtoTCP,
		},
		Payload:   wire,
		Encrypted: true,
	})
}

// handle processes backward cells arriving at the client.
func (c *Client) handle(_ *netsim.Network, pkt *netsim.Packet) {
	cl, err := unmarshalCell(pkt.Payload)
	if err != nil {
		return
	}
	circ, ok := c.circuits[cl.Circ]
	if !ok {
		return
	}
	data := cl.Data
	for _, k := range circ.keys {
		data, err = applyLayer(k, cl.Circ, cl.Seq, true, data)
		if err != nil {
			return
		}
	}
	if c.OnData != nil {
		c.OnData(cl.Circ, data, pkt.DeliveredAt)
	}
}

// handle processes cells at a relay: forward cells shed one layer and move
// toward the exit; backward traffic gains one layer and moves toward the
// client; the exit bridges to plaintext.
func (r *Relay) handle(_ *netsim.Network, pkt *netsim.Packet) {
	rtCirc, fromServer := circFromFlow(pkt.Header.Flow)
	if !fromServer {
		return
	}
	rt, ok := r.routes[rtCirc]
	if !ok {
		return
	}
	isExit := rt.next == ""

	// Backward plaintext from an adjacent server, at the exit only.
	if isExit && pkt.Header.Src != rt.prev {
		rt.exitSeq++
		enc, err := applyLayer(rt.key, rtCirc, rt.exitSeq, true, pkt.Payload)
		if err != nil {
			return
		}
		r.sendCell(rt.prev, cell{Circ: rtCirc, Seq: rt.exitSeq, Data: enc})
		return
	}

	cl, err := unmarshalCell(pkt.Payload)
	if err != nil {
		return
	}
	switch pkt.Header.Src {
	case rt.prev: // forward direction
		data, err := applyLayer(rt.key, cl.Circ, cl.Seq, false, cl.Data)
		if err != nil {
			return
		}
		if !isExit {
			r.sendCell(rt.next, cell{Circ: cl.Circ, Seq: cl.Seq, Data: data})
			return
		}
		rp, err := unmarshalRelayPayload(data)
		if err != nil {
			return
		}
		r.Relayed++
		_ = r.a.net.Send(&netsim.Packet{
			Header: netsim.Header{
				Src: r.ID, Dst: netsim.NodeID(rp.Dst),
				Flow: flowFor(cl.Circ), Proto: netsim.ProtoTCP,
			},
			Payload: rp.Data,
		})
	case rt.next: // backward direction: add this relay's layer
		data, err := applyLayer(rt.key, cl.Circ, cl.Seq, true, cl.Data)
		if err != nil {
			return
		}
		r.sendCell(rt.prev, cell{Circ: cl.Circ, Seq: cl.Seq, Data: data})
	}
}

func (r *Relay) sendCell(to netsim.NodeID, cl cell) {
	wire, err := cl.marshal()
	if err != nil {
		return
	}
	r.Relayed++
	_ = r.a.net.Send(&netsim.Packet{
		Header: netsim.Header{
			Src: r.ID, Dst: to,
			Flow: flowFor(cl.Circ), Proto: netsim.ProtoTCP,
		},
		Payload:   wire,
		Encrypted: true,
	})
}

// handle delivers plaintext requests to the server's application handler.
func (s *Server) handle(_ *netsim.Network, pkt *netsim.Packet) {
	if s.OnRequest != nil {
		s.OnRequest(pkt.Header.Src, pkt.Header.Flow, pkt.Payload)
	}
}

// Reply sends one plaintext packet back toward the exit that forwarded a
// request; the exit wraps it into the circuit. Replies must fit one cell.
func (s *Server) Reply(to netsim.NodeID, flow netsim.FlowID, data []byte) error {
	if len(data) > cellDataCap {
		return fmt.Errorf("%w: reply %d bytes", ErrCellTooLarge, len(data))
	}
	return s.a.net.Send(&netsim.Packet{
		Header: netsim.Header{
			Src: s.ID, Dst: to,
			Flow: flow, Proto: netsim.ProtoTCP,
		},
		Payload: data,
	})
}
