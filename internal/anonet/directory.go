package anonet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"lawgate/internal/netsim"
)

// Directory errors.
var (
	// ErrNotEnoughRelays: the directory cannot supply a path of the
	// requested length.
	ErrNotEnoughRelays = errors.New("anonet: not enough relays for path")
	// ErrUnknownRelay: the relay is not registered with the overlay.
	ErrUnknownRelay = errors.New("anonet: unknown relay")
)

// RelayInfo is a directory entry: a relay and its advertised bandwidth,
// used as the selection weight (clients prefer fast relays, as in Tor).
type RelayInfo struct {
	// ID is the relay's node.
	ID netsim.NodeID
	// BandwidthKBps is the advertised capacity; selection probability
	// is proportional to it.
	BandwidthKBps int
}

// Directory is a consensus view of available relays.
type Directory struct {
	entries []RelayInfo
}

// NewDirectory builds a directory over registered relays. Entries naming
// unknown relays are rejected; non-positive bandwidths are treated as 1.
func (a *Anonet) NewDirectory(entries []RelayInfo) (*Directory, error) {
	d := &Directory{entries: make([]RelayInfo, 0, len(entries))}
	for _, e := range entries {
		if _, ok := a.relays[e.ID]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownRelay, e.ID)
		}
		if e.BandwidthKBps <= 0 {
			e.BandwidthKBps = 1
		}
		d.entries = append(d.entries, e)
	}
	sort.Slice(d.entries, func(i, j int) bool { return d.entries[i].ID < d.entries[j].ID })
	return d, nil
}

// Len returns the number of directory entries.
func (d *Directory) Len() int { return len(d.entries) }

// SelectPath samples n distinct relays, each draw weighted by advertised
// bandwidth, in path order (entry first).
func (d *Directory) SelectPath(r *rand.Rand, n int) ([]netsim.NodeID, error) {
	if n <= 0 || n > len(d.entries) {
		return nil, fmt.Errorf("%w: want %d of %d", ErrNotEnoughRelays, n, len(d.entries))
	}
	remaining := append([]RelayInfo(nil), d.entries...)
	path := make([]netsim.NodeID, 0, n)
	for len(path) < n {
		total := 0
		for _, e := range remaining {
			total += e.BandwidthKBps
		}
		pick := r.Intn(total)
		idx := 0
		for i, e := range remaining {
			pick -= e.BandwidthKBps
			if pick < 0 {
				idx = i
				break
			}
		}
		path = append(path, remaining[idx].ID)
		remaining = append(remaining[:idx], remaining[idx+1:]...)
	}
	return path, nil
}

// BuildRandomCircuit selects a bandwidth-weighted path of length n from
// the directory and telescopes a circuit through it. The underlying links
// must exist; a path whose links are missing fails with ErrNotConnected,
// and the caller may retry (real clients do the same on extend failures).
func (a *Anonet) BuildRandomCircuit(client *Client, d *Directory, n int) (*Circuit, error) {
	path, err := d.SelectPath(a.net.Sim().Rand(), n)
	if err != nil {
		return nil, err
	}
	return a.BuildCircuit(client, path...)
}
