// Package anonet implements the Section IV-B substrate: a Tor-like
// low-latency anonymity network with telescoped three-hop circuits and
// per-hop layered encryption (AES-CTR). Clients wrap traffic in one
// encryption layer per relay; each relay strips (or, on the return path,
// adds) exactly one layer, so no relay sees both endpoints and only the
// exit sees plaintext.
//
// The network exists to carry the paper's watermark-traceback experiment:
// law enforcement cannot read the suspect's circuit traffic (a Title III
// wiretap order would be required, and decryption would be useless without
// keys), but packet *rates* remain observable at the suspect's ISP — the
// non-content signal the internal/watermark package modulates and detects.
package anonet

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
)

// CellSize is the fixed on-wire cell size, mimicking Tor's padded cells.
const CellSize = 512

// cellDataCap is the usable data capacity of one cell.
const cellDataCap = CellSize - cellHeaderLen

const cellHeaderLen = 8 + 8 + 2 // circID + seq + length

// Cell errors.
var (
	// ErrCellTooLarge: payload exceeds cell capacity.
	ErrCellTooLarge = errors.New("anonet: payload exceeds cell capacity")
	// ErrBadCell: a cell failed to parse.
	ErrBadCell = errors.New("anonet: malformed cell")
)

// CircuitID identifies a circuit network-wide.
type CircuitID uint64

// cell is the unit of circuit transmission.
type cell struct {
	Circ CircuitID
	Seq  uint64
	Data []byte // plaintext or onion-encrypted; length ≤ cellDataCap
}

// marshal encodes the cell padded to CellSize. The header (circuit ID,
// sequence, length) stays in the clear, as in Tor: relays need it to
// route; it is addressing information, not content.
func (c cell) marshal() ([]byte, error) {
	if len(c.Data) > cellDataCap {
		return nil, fmt.Errorf("%w: %d > %d", ErrCellTooLarge, len(c.Data), cellDataCap)
	}
	buf := make([]byte, CellSize)
	binary.BigEndian.PutUint64(buf[0:8], uint64(c.Circ))
	binary.BigEndian.PutUint64(buf[8:16], c.Seq)
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(c.Data)))
	copy(buf[cellHeaderLen:], c.Data)
	return buf, nil
}

// unmarshalCell parses a padded cell.
func unmarshalCell(b []byte) (cell, error) {
	if len(b) != CellSize {
		return cell{}, fmt.Errorf("%w: size %d", ErrBadCell, len(b))
	}
	n := binary.BigEndian.Uint16(b[16:18])
	if int(n) > cellDataCap {
		return cell{}, fmt.Errorf("%w: length %d", ErrBadCell, n)
	}
	return cell{
		Circ: CircuitID(binary.BigEndian.Uint64(b[0:8])),
		Seq:  binary.BigEndian.Uint64(b[8:16]),
		Data: append([]byte(nil), b[cellHeaderLen:cellHeaderLen+int(n)]...),
	}, nil
}

// LayerKey is one hop's symmetric key.
type LayerKey [16]byte

// applyLayer applies one AES-CTR layer keyed by k. CTR is an involution
// under a fixed keystream, so the same call encrypts and decrypts. The
// nonce binds circuit, sequence number, and direction so keystreams never
// repeat across cells or directions.
func applyLayer(k LayerKey, circ CircuitID, seq uint64, backward bool, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		return nil, fmt.Errorf("anonet: cipher: %w", err)
	}
	iv := make([]byte, aes.BlockSize)
	binary.BigEndian.PutUint64(iv[0:8], uint64(circ))
	binary.BigEndian.PutUint64(iv[8:16], seq)
	if backward {
		iv[0] ^= 0x80
	}
	out := make([]byte, len(data))
	cipher.NewCTR(block, iv).XORKeyStream(out, data)
	return out, nil
}

// relayPayload is the innermost (exit-layer) plaintext of a forward cell:
// the destination the exit should forward to, plus the application data.
type relayPayload struct {
	Dst  string
	Data []byte
}

func (r relayPayload) marshal() ([]byte, error) {
	if len(r.Dst) > 255 {
		return nil, fmt.Errorf("%w: destination name too long", ErrBadCell)
	}
	out := make([]byte, 1+len(r.Dst)+len(r.Data))
	out[0] = byte(len(r.Dst))
	copy(out[1:], r.Dst)
	copy(out[1+len(r.Dst):], r.Data)
	return out, nil
}

func unmarshalRelayPayload(b []byte) (relayPayload, error) {
	if len(b) < 1 {
		return relayPayload{}, fmt.Errorf("%w: empty relay payload", ErrBadCell)
	}
	n := int(b[0])
	if len(b) < 1+n {
		return relayPayload{}, fmt.Errorf("%w: truncated destination", ErrBadCell)
	}
	return relayPayload{
		Dst:  string(b[1 : 1+n]),
		Data: append([]byte(nil), b[1+n:]...),
	}, nil
}
