package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lawgate/internal/investigation"
	"lawgate/internal/legal"
)

func TestTable1Report(t *testing.T) {
	views, err := Table1Report(legal.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 20 {
		t.Fatalf("views = %d", len(views))
	}
	if got := Matches(views); got != 20 {
		t.Errorf("matches = %d, want 20", got)
	}
	for _, v := range views {
		if v.Description == "" || v.PaperAnswer == "" || v.Required == "" || v.Regime == "" {
			t.Errorf("scene %d has empty fields: %+v", v.Number, v)
		}
	}
}

func TestCaseStudiesReport(t *testing.T) {
	views, err := CaseStudiesReport(legal.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("views = %d", len(views))
	}
	for _, v := range views {
		if !v.Match {
			t.Errorf("%s: paper %s vs engine %s", v.ID, v.PaperRequires, v.EngineRequire)
		}
	}
}

func TestFromRuling(t *testing.T) {
	r, err := legal.NewEngine().Evaluate(legal.Action{
		Name:   "wiretap",
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingRealTime,
		Data:   legal.DataContent,
		Source: legal.SourceThirdPartyNetwork,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := FromRuling(r)
	if v.Action != "wiretap" || v.Required != "wiretap order" || !v.NeedsProcess {
		t.Errorf("view = %+v", v)
	}
	if len(v.Rationale) == 0 || len(v.Citations) == 0 {
		t.Error("rationale/citations missing")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	views, err := Table1Report(legal.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, views); err != nil {
		t.Fatal(err)
	}
	var back []SceneView
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != 20 || back[0].Number != 1 {
		t.Errorf("round trip = %d views", len(back))
	}
	// Field tags in effect.
	if !strings.Contains(buf.String(), `"paperAnswer"`) {
		t.Error("JSON missing tagged field names")
	}
}

func TestTable1Markdown(t *testing.T) {
	views, err := Table1Report(legal.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	md := Table1Markdown(views)
	if !strings.HasPrefix(md, "| # | Paper | Engine |") {
		t.Errorf("markdown header: %q", md[:40])
	}
	if got := strings.Count(md, "\n"); got != 22 { // header + separator + 20 rows
		t.Errorf("markdown lines = %d, want 22", got)
	}
	if strings.Contains(md, "MISMATCH") {
		t.Error("markdown reports a mismatch")
	}
}

func TestCaseReport(t *testing.T) {
	res, err := investigation.RunKylloDemo()
	if err != nil {
		t.Fatal(err)
	}
	v := CaseReport(res.Case)
	if v.Name != "kyllo-demo" {
		t.Errorf("name = %q", v.Name)
	}
	if v.TotalExhibits != 2 || v.AdmissibleOf != 0 {
		t.Errorf("exhibits = %d/%d admissible", v.AdmissibleOf, v.TotalExhibits)
	}
	if !v.CustodyIntact {
		t.Error("custody must verify")
	}
	if len(v.Custody) != 2 {
		t.Errorf("custody entries = %d", len(v.Custody))
	}
	// The derived item names its taint source.
	var sawFruit bool
	for _, ev := range v.Evidence {
		if ev.TaintSource != "" {
			sawFruit = true
			if len(ev.Parents) == 0 {
				t.Error("fruit item must list parents")
			}
		}
	}
	if !sawFruit {
		t.Error("no fruit item in kyllo report")
	}
	// Round-trips through JSON with tagged fields.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, v); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"custodyIntact"`) {
		t.Error("JSON missing tagged field")
	}
	var back CaseView
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalExhibits != 2 {
		t.Errorf("round trip exhibits = %d", back.TotalExhibits)
	}
}
