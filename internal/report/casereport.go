package report

import (
	"time"

	"lawgate/internal/evidence"
	"lawgate/internal/investigation"
)

// EvidenceView is a serialization-friendly projection of one evidence item
// together with its suppression outcome.
type EvidenceView struct {
	ID          string   `json:"id"`
	Description string   `json:"description"`
	SHA256      string   `json:"sha256"`
	Size        int      `json:"size"`
	Acquisition string   `json:"acquisition"`
	Required    string   `json:"required"`
	Held        string   `json:"held"`
	Status      string   `json:"status"`
	TaintSource string   `json:"taintSource,omitempty"`
	Parents     []string `json:"parents,omitempty"`
}

// CustodyView is one chain-of-custody entry.
type CustodyView struct {
	Seq       int       `json:"seq"`
	At        time.Time `json:"at"`
	Custodian string    `json:"custodian"`
	Event     string    `json:"event"`
	ItemID    string    `json:"itemId"`
	Note      string    `json:"note,omitempty"`
	Hash      string    `json:"hash"`
}

// CaseView is a full machine-readable case export: facts, orders,
// evidence with outcomes, and the custody chain.
type CaseView struct {
	Name          string         `json:"name"`
	Showing       string         `json:"showing"`
	HeldProcess   string         `json:"heldProcess"`
	Facts         []string       `json:"facts"`
	Orders        []string       `json:"orders"`
	Evidence      []EvidenceView `json:"evidence"`
	Custody       []CustodyView  `json:"custody"`
	CustodyIntact bool           `json:"custodyIntact"`
	AdmissibleOf  int            `json:"admissible"`
	TotalExhibits int            `json:"totalExhibits"`
}

// CaseReport projects a case for export.
func CaseReport(c *investigation.Case) CaseView {
	v := CaseView{
		Name:        c.Name,
		Showing:     c.Showing().String(),
		HeldProcess: c.HeldProcess().String(),
	}
	for _, f := range c.Facts() {
		v.Facts = append(v.Facts, f.Kind.String()+": "+f.Description)
	}
	for _, o := range c.Orders() {
		v.Orders = append(v.Orders, o.Serial+": "+o.Process.String())
	}
	byID := make(map[evidence.ID]evidence.Assessment)
	for _, a := range c.Assess() {
		byID[a.ItemID] = a
		v.TotalExhibits++
		if a.Admissible() {
			v.AdmissibleOf++
		}
	}
	for _, it := range c.Evidence() {
		a := byID[it.ID]
		ev := EvidenceView{
			ID:          string(it.ID),
			Description: it.Description,
			SHA256:      it.SHA256,
			Size:        it.Size,
			Acquisition: it.Acquisition.Name,
			Required:    it.Ruling.Required.String(),
			Held:        it.Held.String(),
			Status:      a.Status.String(),
			TaintSource: string(a.TaintSource),
		}
		for _, p := range it.Parents {
			ev.Parents = append(ev.Parents, string(p))
		}
		v.Evidence = append(v.Evidence, ev)
	}
	for _, e := range c.Custody() {
		v.Custody = append(v.Custody, CustodyView{
			Seq:       e.Seq,
			At:        e.At,
			Custodian: e.Custodian,
			Event:     e.Event.String(),
			ItemID:    string(e.ItemID),
			Note:      e.Note,
			Hash:      e.Hash,
		})
	}
	v.CustodyIntact = c.VerifyCustody() == nil
	return v
}
