package report

import (
	"encoding/hex"
	"time"

	"lawgate/internal/evidence"
	"lawgate/internal/investigation"
	"lawgate/internal/ledger"
)

// ProofView is a serialization-friendly inclusion proof: the exhibit's
// ledger record, proven to sit under the cited root. A reader holding
// only the root can re-run the check with ledger.VerifyProof.
type ProofView struct {
	// LedgerSeq is the acquisition record's sequence number.
	LedgerSeq uint64 `json:"ledgerSeq"`
	// RecordHash is the record's hex chain hash (the proof's leaf).
	RecordHash string `json:"recordHash"`
	// Size is the ledger size the proof targets.
	Size uint64 `json:"size"`
	// Path is the hex sibling path, deepest first.
	Path []string `json:"path"`
	// Verified reports that the proof was checked against the ledger
	// root at export time.
	Verified bool `json:"verified"`
}

// EvidenceView is a serialization-friendly projection of one evidence item
// together with its suppression outcome and its anchor into the audit
// ledger — admissibility cites an inclusion proof, not a bare flag.
type EvidenceView struct {
	ID          string    `json:"id"`
	Description string    `json:"description"`
	SHA256      string    `json:"sha256"`
	Size        int       `json:"size"`
	Acquisition string    `json:"acquisition"`
	Required    string    `json:"required"`
	Held        string    `json:"held"`
	Status      string    `json:"status"`
	TaintSource string    `json:"taintSource,omitempty"`
	Parents     []string  `json:"parents,omitempty"`
	Proof       ProofView `json:"proof"`
}

// CustodyView is one chain-of-custody entry.
type CustodyView struct {
	Seq       int       `json:"seq"`
	At        time.Time `json:"at"`
	Custodian string    `json:"custodian"`
	Event     string    `json:"event"`
	ItemID    string    `json:"itemId"`
	Note      string    `json:"note,omitempty"`
	Hash      string    `json:"hash"`
}

// CaseView is a full machine-readable case export: facts, orders,
// evidence with outcomes, and the custody chain.
type CaseView struct {
	Name          string         `json:"name"`
	Showing       string         `json:"showing"`
	HeldProcess   string         `json:"heldProcess"`
	Facts         []string       `json:"facts"`
	Orders        []string       `json:"orders"`
	Evidence      []EvidenceView `json:"evidence"`
	Custody       []CustodyView  `json:"custody"`
	CustodyIntact bool           `json:"custodyIntact"`
	AdmissibleOf  int            `json:"admissible"`
	TotalExhibits int            `json:"totalExhibits"`
	// LedgerRoot/LedgerSize commit to the case's audit ledger at export
	// time; every exhibit's Proof verifies against this root.
	LedgerRoot string `json:"ledgerRoot"`
	LedgerSize uint64 `json:"ledgerSize"`
	// LedgerIntact reports a full Verify pass over the ledger.
	LedgerIntact bool `json:"ledgerIntact"`
}

// CaseReport projects a case for export.
func CaseReport(c *investigation.Case) CaseView {
	v := CaseView{
		Name:        c.Name,
		Showing:     c.Showing().String(),
		HeldProcess: c.HeldProcess().String(),
	}
	for _, f := range c.Facts() {
		v.Facts = append(v.Facts, f.Kind.String()+": "+f.Description)
	}
	for _, o := range c.Orders() {
		v.Orders = append(v.Orders, o.Serial+": "+o.Process.String())
	}
	byID := make(map[evidence.ID]evidence.Assessment)
	for _, a := range c.Assess() {
		byID[a.ItemID] = a
		v.TotalExhibits++
		if a.Admissible() {
			v.AdmissibleOf++
		}
	}
	led := c.Ledger()
	for _, it := range c.Evidence() {
		a := byID[it.ID]
		ev := EvidenceView{
			ID:          string(it.ID),
			Description: it.Description,
			SHA256:      it.SHA256,
			Size:        it.Size,
			Acquisition: it.Acquisition.Name,
			Required:    it.Ruling.Required.String(),
			Held:        it.Held.String(),
			Status:      a.Status.String(),
			TaintSource: string(a.TaintSource),
			Proof: ProofView{
				LedgerSeq:  a.LedgerSeq,
				RecordHash: hex.EncodeToString(a.RecordHash[:]),
				Size:       a.Proof.Size,
			},
		}
		for _, h := range a.Proof.Path {
			ev.Proof.Path = append(ev.Proof.Path, hex.EncodeToString(h[:]))
		}
		if root, err := led.RootAt(a.Proof.Size); err == nil {
			ev.Proof.Verified = ledger.VerifyProof(a.RecordHash, a.Proof, root)
		}
		for _, p := range it.Parents {
			ev.Parents = append(ev.Parents, string(p))
		}
		v.Evidence = append(v.Evidence, ev)
	}
	for _, e := range c.Custody() {
		v.Custody = append(v.Custody, CustodyView{
			Seq:       e.Seq,
			At:        e.At,
			Custodian: e.Custodian,
			Event:     e.Event.String(),
			ItemID:    string(e.ItemID),
			Note:      e.Note,
			Hash:      e.Hash,
		})
	}
	v.CustodyIntact = c.VerifyCustody() == nil
	cp := c.LedgerCheckpoint()
	v.LedgerRoot = hex.EncodeToString(cp.Root[:])
	v.LedgerSize = cp.Size
	v.LedgerIntact = c.VerifyLedger() == nil
	return v
}
