// Package report renders lawgate results — engine rulings, the Table 1
// reproduction, case-study checks — as JSON for machine consumption and
// Markdown for documents like EXPERIMENTS.md. The views are flat,
// string-typed projections so downstream tooling never needs the legal
// package's enums.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"lawgate/internal/legal"
	"lawgate/internal/scenario"
)

// RulingView is a serialization-friendly projection of a legal.Ruling.
type RulingView struct {
	Action       string   `json:"action"`
	Required     string   `json:"required"`
	Regime       string   `json:"regime"`
	NeedsProcess bool     `json:"needsProcess"`
	Exceptions   []string `json:"exceptions,omitempty"`
	Rationale    []string `json:"rationale"`
	Citations    []string `json:"citations"`
}

// FromRuling projects a ruling.
func FromRuling(r legal.Ruling) RulingView {
	v := RulingView{
		Action:       r.Action.Name,
		Required:     r.Required.String(),
		Regime:       r.Regime.String(),
		NeedsProcess: r.NeedsProcess(),
		Rationale:    append([]string(nil), r.Rationale...),
	}
	for _, e := range r.Exceptions {
		v.Exceptions = append(v.Exceptions, e.String())
	}
	for _, c := range r.Citations {
		v.Citations = append(v.Citations, c.Title)
	}
	return v
}

// SceneView is one Table 1 row: the paper's answer next to the engine's.
type SceneView struct {
	Number      int    `json:"number"`
	Description string `json:"description"`
	PaperAnswer string `json:"paperAnswer"`
	EngineNeeds bool   `json:"engineNeedsProcess"`
	Required    string `json:"required"`
	Regime      string `json:"regime"`
	Match       bool   `json:"match"`
}

// Table1Report evaluates every scene and pairs it with the paper's answer.
func Table1Report(engine *legal.Engine) ([]SceneView, error) {
	scenes := scenario.Table1()
	out := make([]SceneView, 0, len(scenes))
	for _, s := range scenes {
		r, err := engine.Evaluate(s.Action)
		if err != nil {
			return nil, fmt.Errorf("report: scene %d: %w", s.Number, err)
		}
		out = append(out, SceneView{
			Number:      s.Number,
			Description: s.Description,
			PaperAnswer: s.Answer(),
			EngineNeeds: r.NeedsProcess(),
			Required:    r.Required.String(),
			Regime:      r.Regime.String(),
			Match:       r.NeedsProcess() == s.PaperNeeds,
		})
	}
	return out, nil
}

// CaseStudyView is one Section IV check.
type CaseStudyView struct {
	ID            string `json:"id"`
	Description   string `json:"description"`
	PaperRequires string `json:"paperRequires"`
	EngineRequire string `json:"engineRequires"`
	Match         bool   `json:"match"`
}

// CaseStudiesReport evaluates the Section IV situations.
func CaseStudiesReport(engine *legal.Engine) ([]CaseStudyView, error) {
	studies := scenario.CaseStudies()
	out := make([]CaseStudyView, 0, len(studies))
	for _, cs := range studies {
		r, err := engine.Evaluate(cs.Action)
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", cs.ID, err)
		}
		out = append(out, CaseStudyView{
			ID:            cs.ID,
			Description:   cs.Description,
			PaperRequires: cs.PaperProcess.String(),
			EngineRequire: r.Required.String(),
			Match:         r.Required == cs.PaperProcess,
		})
	}
	return out, nil
}

// WriteJSON writes v as indented JSON.
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Table1Markdown renders the Table 1 report as a Markdown table.
func Table1Markdown(views []SceneView) string {
	var b strings.Builder
	b.WriteString("| # | Paper | Engine | Regime | Required | Match |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, v := range views {
		engine := "No need"
		if v.EngineNeeds {
			engine = "Need"
		}
		match := "OK"
		if !v.Match {
			match = "MISMATCH"
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %s | %s | %s |\n",
			v.Number, v.PaperAnswer, engine, v.Regime, v.Required, match)
	}
	return b.String()
}

// Matches counts matching rows.
func Matches(views []SceneView) int {
	n := 0
	for _, v := range views {
		if v.Match {
			n++
		}
	}
	return n
}
