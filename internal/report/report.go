// Package report renders lawgate results — engine rulings, the Table 1
// reproduction, case-study checks — as JSON for machine consumption and
// Markdown for documents like EXPERIMENTS.md. The views are flat,
// string-typed projections so downstream tooling never needs the legal
// package's enums.
package report

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"lawgate/internal/legal"
	"lawgate/internal/scenario"
)

// RulingView is a serialization-friendly projection of a legal.Ruling.
type RulingView struct {
	Action       string   `json:"action"`
	Required     string   `json:"required"`
	Regime       string   `json:"regime"`
	NeedsProcess bool     `json:"needsProcess"`
	Exceptions   []string `json:"exceptions,omitempty"`
	Rationale    []string `json:"rationale"`
	Citations    []string `json:"citations"`
}

// FromRuling projects a ruling.
func FromRuling(r legal.Ruling) RulingView {
	v := RulingView{
		Action:       r.Action.Name,
		Required:     r.Required.String(),
		Regime:       r.Regime.String(),
		NeedsProcess: r.NeedsProcess(),
		Rationale:    append([]string(nil), r.Rationale...),
	}
	for _, e := range r.Exceptions {
		v.Exceptions = append(v.Exceptions, e.String())
	}
	for _, c := range r.Citations {
		v.Citations = append(v.Citations, c.Title)
	}
	return v
}

// SceneView is one Table 1 row: the paper's answer next to the engine's.
type SceneView struct {
	Number      int    `json:"number"`
	Description string `json:"description"`
	PaperAnswer string `json:"paperAnswer"`
	EngineNeeds bool   `json:"engineNeedsProcess"`
	Required    string `json:"required"`
	Regime      string `json:"regime"`
	Match       bool   `json:"match"`
}

// Table1Report evaluates every scene through the engine's concurrent
// batch API and pairs each with the paper's answer.
func Table1Report(engine *legal.Engine) ([]SceneView, error) {
	rulings, err := scenario.EvaluateTable1(context.Background(), engine)
	if err != nil {
		return nil, err
	}
	out := make([]SceneView, 0, len(rulings))
	for _, sr := range rulings {
		out = append(out, SceneView{
			Number:      sr.Scene.Number,
			Description: sr.Scene.Description,
			PaperAnswer: sr.Scene.Answer(),
			EngineNeeds: sr.Ruling.NeedsProcess(),
			Required:    sr.Ruling.Required.String(),
			Regime:      sr.Ruling.Regime.String(),
			Match:       sr.Matches(),
		})
	}
	return out, nil
}

// CaseStudyView is one Section IV check.
type CaseStudyView struct {
	ID            string `json:"id"`
	Description   string `json:"description"`
	PaperRequires string `json:"paperRequires"`
	EngineRequire string `json:"engineRequires"`
	Match         bool   `json:"match"`
}

// CaseStudiesReport evaluates the Section IV situations through the
// engine's concurrent batch API.
func CaseStudiesReport(engine *legal.Engine) ([]CaseStudyView, error) {
	rulings, err := scenario.EvaluateCaseStudies(context.Background(), engine)
	if err != nil {
		return nil, err
	}
	out := make([]CaseStudyView, 0, len(rulings))
	for _, cr := range rulings {
		out = append(out, CaseStudyView{
			ID:            cr.Study.ID,
			Description:   cr.Study.Description,
			PaperRequires: cr.Study.PaperProcess.String(),
			EngineRequire: cr.Ruling.Required.String(),
			Match:         cr.Matches(),
		})
	}
	return out, nil
}

// WriteJSON writes v as indented JSON.
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Table1Markdown renders the Table 1 report as a Markdown table.
func Table1Markdown(views []SceneView) string {
	var b strings.Builder
	b.WriteString("| # | Paper | Engine | Regime | Required | Match |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, v := range views {
		engine := "No need"
		if v.EngineNeeds {
			engine = "Need"
		}
		match := "OK"
		if !v.Match {
			match = "MISMATCH"
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %s | %s | %s |\n",
			v.Number, v.PaperAnswer, engine, v.Regime, v.Required, match)
	}
	return b.String()
}

// Matches counts matching rows.
func Matches(views []SceneView) int {
	n := 0
	for _, v := range views {
		if v.Match {
			n++
		}
	}
	return n
}
