// Package attribution implements the identification goals of paper
// § III-A-2: a technique assisting law enforcement should (i) prove the
// action of a particular individual rather than anyone with access to the
// computer, (ii) confirm that a virus or other malware was not responsible
// for the crime (rebutting the trojan defense), and (iii) show the
// defendant had knowledge of the subject (browsing history and cookies —
// the paper's methamphetamine-laboratory example).
//
// The Analyzer consumes artifacts extracted from a device examination —
// login sessions, file events, browsing records, resident processes — and
// produces findings plus court.Facts ready to support process
// applications.
package attribution

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lawgate/internal/court"
)

// LoginRecord is one user session on the examined machine.
type LoginRecord struct {
	// User is the account.
	User string
	// At is the session start; Duration its length.
	At       time.Time
	Duration time.Duration
}

// covers reports whether the session was active at t.
func (l LoginRecord) covers(t time.Time) bool {
	return !t.Before(l.At) && !t.After(l.At.Add(l.Duration))
}

// FileEventKind classifies a file event.
type FileEventKind int

// File event kinds.
const (
	// EventCreated is file creation.
	EventCreated FileEventKind = iota + 1
	// EventModified is modification.
	EventModified
	// EventOpened is an open/read.
	EventOpened
)

// String returns the kind name.
func (k FileEventKind) String() string {
	switch k {
	case EventCreated:
		return "created"
	case EventModified:
		return "modified"
	case EventOpened:
		return "opened"
	default:
		return fmt.Sprintf("FileEventKind(%d)", int(k))
	}
}

// FileEvent is one filesystem event attributed to an account.
type FileEvent struct {
	// Path is the file concerned.
	Path string
	// Owner is the acting account.
	Owner string
	// At is the event time; Kind the event class.
	At   time.Time
	Kind FileEventKind
}

// BrowsingRecord is one history/cookie artifact.
type BrowsingRecord struct {
	// User is the account.
	User string
	// URL is the visited resource.
	URL string
	// At is the visit time.
	At time.Time
	// Terms are extracted search terms or page keywords.
	Terms []string
}

// ProcessRecord is one resident program found on the machine.
type ProcessRecord struct {
	// Name is the executable name.
	Name string
	// SHA256 is the hex content hash, matched against known malware.
	SHA256 string
	// Autostart marks persistence (run keys, services).
	Autostart bool
}

// Evidence is the artifact set extracted from one machine.
type Evidence struct {
	// Users are the accounts present on the machine.
	Users []string
	// Logins, Files, Browsing, Processes are the artifact streams.
	Logins    []LoginRecord
	Files     []FileEvent
	Browsing  []BrowsingRecord
	Processes []ProcessRecord
}

// ActorFinding attributes one contraband file to an account.
type ActorFinding struct {
	// Path is the contraband file.
	Path string
	// User is the account that created it, or "" if no creation event
	// exists.
	User string
	// Exclusive reports whether no other account had an active session
	// at creation time — the paper's goal (i): prove the action of a
	// particular individual "rather than allowing for the possibility
	// that someone else with access to the computer did so".
	Exclusive bool
	// OthersPresent lists other accounts with overlapping sessions.
	OthersPresent []string
}

// MalwareFinding flags one suspicious resident program.
type MalwareFinding struct {
	// Name and SHA256 identify the program.
	Name, SHA256 string
	// Known marks a hash-set match; Autostart marks persistence of an
	// unrecognized program.
	Known     bool
	Autostart bool
}

// KnowledgeFinding ties browsing activity to the crime's subject.
type KnowledgeFinding struct {
	// User is the account; URL the visited resource.
	User, URL string
	// MatchedTerms are the subject terms found.
	MatchedTerms []string
	// At is the visit time.
	At time.Time
}

// Report is the full attribution analysis.
type Report struct {
	// Actors holds goal (i): who put the contraband there.
	Actors []ActorFinding
	// Malware holds goal (ii): MalwareClean is true when nothing
	// suspicious resides on the machine, rebutting the trojan defense.
	Malware      []MalwareFinding
	MalwareClean bool
	// Knowledge holds goal (iii): subject-matter awareness.
	Knowledge []KnowledgeFinding
	// Facts are court-ready facts derived from the findings.
	Facts []court.Fact
}

// Analyzer performs attribution analysis. KnownMalware maps hex SHA-256 to
// a family name.
type Analyzer struct {
	// KnownMalware is the malware hash set.
	KnownMalware map[string]string
}

// Analyze runs the three § III-A-2 analyses over the evidence:
// contrabandPaths are the files to attribute, and subjectTerms describe
// the crime's subject matter for the knowledge analysis.
func (a *Analyzer) Analyze(ev Evidence, contrabandPaths []string, subjectTerms []string) Report {
	var rep Report

	// Goal (i): attribute each contraband file's creation.
	for _, path := range contrabandPaths {
		finding := ActorFinding{Path: path}
		var created *FileEvent
		for i := range ev.Files {
			e := &ev.Files[i]
			if e.Path == path && e.Kind == EventCreated {
				created = e
				break
			}
		}
		if created != nil {
			finding.User = created.Owner
			finding.Exclusive = true
			for _, l := range ev.Logins {
				if l.User != created.Owner && l.covers(created.At) {
					finding.Exclusive = false
					finding.OthersPresent = append(finding.OthersPresent, l.User)
				}
			}
			sort.Strings(finding.OthersPresent)
			finding.OthersPresent = dedupe(finding.OthersPresent)
		}
		rep.Actors = append(rep.Actors, finding)
	}

	// Goal (ii): the trojan-defense check.
	rep.MalwareClean = true
	for _, p := range ev.Processes {
		family, known := a.KnownMalware[p.SHA256]
		if known {
			rep.Malware = append(rep.Malware, MalwareFinding{
				Name: p.Name + " (" + family + ")", SHA256: p.SHA256, Known: true, Autostart: p.Autostart,
			})
			rep.MalwareClean = false
			continue
		}
		if p.Autostart && !recognized(p.Name) {
			rep.Malware = append(rep.Malware, MalwareFinding{
				Name: p.Name, SHA256: p.SHA256, Autostart: true,
			})
			rep.MalwareClean = false
		}
	}

	// Goal (iii): subject-matter knowledge.
	for _, b := range ev.Browsing {
		var matched []string
		for _, term := range subjectTerms {
			for _, have := range b.Terms {
				if strings.EqualFold(term, have) {
					matched = append(matched, have)
				}
			}
		}
		if len(matched) > 0 {
			rep.Knowledge = append(rep.Knowledge, KnowledgeFinding{
				User: b.User, URL: b.URL, MatchedTerms: matched, At: b.At,
			})
		}
	}

	rep.Facts = a.deriveFacts(rep)
	return rep
}

// deriveFacts converts findings into court-ready facts: an exclusive,
// malware-clean attribution is direct evidence of the individual's act;
// knowledge findings evidence intent.
func (a *Analyzer) deriveFacts(rep Report) []court.Fact {
	var facts []court.Fact
	for _, f := range rep.Actors {
		if f.User == "" {
			continue
		}
		if f.Exclusive && rep.MalwareClean {
			facts = append(facts, court.Fact{
				Kind: court.FactDirectObservation,
				Description: fmt.Sprintf(
					"forensic artifacts place %s alone at the machine when %s was created; no malware present",
					f.User, f.Path),
			})
		} else {
			facts = append(facts, court.Fact{
				Kind: court.FactAccountMembership,
				Description: fmt.Sprintf(
					"account %s created %s, but attribution is not exclusive", f.User, f.Path),
			})
		}
	}
	for _, k := range rep.Knowledge {
		facts = append(facts, court.Fact{
			Kind: court.FactIntentEvidence,
			Description: fmt.Sprintf(
				"browsing history shows %s researched %s (%s)",
				k.User, strings.Join(k.MatchedTerms, ", "), k.URL),
		})
	}
	return facts
}

// recognized whitelists ordinary system components for the autostart
// heuristic.
func recognized(name string) bool {
	switch strings.ToLower(name) {
	case "explorer.exe", "init", "systemd", "launchd", "svchost.exe":
		return true
	default:
		return false
	}
}

func dedupe(in []string) []string {
	out := in[:0]
	var last string
	for i, s := range in {
		if i == 0 || s != last {
			out = append(out, s)
		}
		last = s
	}
	return out
}
