package attribution

import (
	"testing"
	"time"

	"lawgate/internal/court"
	"lawgate/internal/legal"
)

var t0 = time.Date(2012, time.February, 10, 20, 0, 0, 0, time.UTC)

func soloEvidence() Evidence {
	return Evidence{
		Users: []string{"dad", "teen"},
		Logins: []LoginRecord{
			{User: "dad", At: t0, Duration: 2 * time.Hour},
			{User: "teen", At: t0.Add(5 * time.Hour), Duration: time.Hour},
		},
		Files: []FileEvent{
			{Path: "c:/stash/img1.jpg", Owner: "dad", At: t0.Add(30 * time.Minute), Kind: EventCreated},
			{Path: "c:/stash/img1.jpg", Owner: "dad", At: t0.Add(40 * time.Minute), Kind: EventOpened},
		},
		Browsing: []BrowsingRecord{
			{User: "dad", URL: "http://example.com/howto", At: t0.Add(20 * time.Minute),
				Terms: []string{"methamphetamine", "laboratory"}},
			{User: "teen", URL: "http://example.com/games", At: t0.Add(5*time.Hour + 10*time.Minute),
				Terms: []string{"games"}},
		},
		Processes: []ProcessRecord{
			{Name: "explorer.exe", SHA256: "aaaa", Autostart: true},
			{Name: "editor.exe", SHA256: "bbbb"},
		},
	}
}

func TestExclusiveAttribution(t *testing.T) {
	a := &Analyzer{}
	rep := a.Analyze(soloEvidence(), []string{"c:/stash/img1.jpg"}, []string{"methamphetamine"})
	if len(rep.Actors) != 1 {
		t.Fatalf("actors = %d", len(rep.Actors))
	}
	f := rep.Actors[0]
	if f.User != "dad" || !f.Exclusive || len(f.OthersPresent) != 0 {
		t.Errorf("finding = %+v", f)
	}
	if !rep.MalwareClean {
		t.Errorf("machine should be malware-clean: %+v", rep.Malware)
	}
}

func TestSharedSessionDefeatsExclusivity(t *testing.T) {
	ev := soloEvidence()
	// A second user logged in across the creation time.
	ev.Logins = append(ev.Logins, LoginRecord{User: "teen", At: t0, Duration: time.Hour})
	a := &Analyzer{}
	rep := a.Analyze(ev, []string{"c:/stash/img1.jpg"}, nil)
	f := rep.Actors[0]
	if f.Exclusive {
		t.Error("overlapping session must defeat exclusivity")
	}
	if len(f.OthersPresent) != 1 || f.OthersPresent[0] != "teen" {
		t.Errorf("others = %v", f.OthersPresent)
	}
}

func TestNoCreationEvent(t *testing.T) {
	a := &Analyzer{}
	rep := a.Analyze(soloEvidence(), []string{"c:/other/unknown.bin"}, nil)
	f := rep.Actors[0]
	if f.User != "" || f.Exclusive {
		t.Errorf("unattributable file produced %+v", f)
	}
	// No fact derived for an unattributable file.
	for _, fact := range rep.Facts {
		if fact.Kind == court.FactDirectObservation {
			t.Errorf("unattributable file yielded direct-observation fact: %+v", fact)
		}
	}
}

func TestKnownMalwareDetected(t *testing.T) {
	ev := soloEvidence()
	ev.Processes = append(ev.Processes, ProcessRecord{Name: "svc32.exe", SHA256: "deadbeef", Autostart: true})
	a := &Analyzer{KnownMalware: map[string]string{"deadbeef": "ZeusVariant"}}
	rep := a.Analyze(ev, []string{"c:/stash/img1.jpg"}, nil)
	if rep.MalwareClean {
		t.Fatal("known malware must defeat the clean finding")
	}
	var found bool
	for _, m := range rep.Malware {
		if m.Known && m.SHA256 == "deadbeef" {
			found = true
		}
	}
	if !found {
		t.Errorf("malware findings = %+v", rep.Malware)
	}
	// With malware present, attribution downgrades to non-exclusive
	// fact quality.
	for _, fact := range rep.Facts {
		if fact.Kind == court.FactDirectObservation {
			t.Error("malware-present machine must not yield direct-observation facts")
		}
	}
}

func TestUnknownAutostartFlagged(t *testing.T) {
	ev := soloEvidence()
	ev.Processes = append(ev.Processes, ProcessRecord{Name: "updater.exe", SHA256: "cccc", Autostart: true})
	a := &Analyzer{}
	rep := a.Analyze(ev, nil, nil)
	if rep.MalwareClean {
		t.Error("unrecognized autostart program must be flagged")
	}
}

func TestKnowledgeFindings(t *testing.T) {
	a := &Analyzer{}
	rep := a.Analyze(soloEvidence(), nil, []string{"methamphetamine", "precursors"})
	if len(rep.Knowledge) != 1 {
		t.Fatalf("knowledge findings = %d", len(rep.Knowledge))
	}
	k := rep.Knowledge[0]
	if k.User != "dad" || len(k.MatchedTerms) != 1 || k.MatchedTerms[0] != "methamphetamine" {
		t.Errorf("finding = %+v", k)
	}
	// Case-insensitive matching.
	rep = a.Analyze(soloEvidence(), nil, []string{"METHAMPHETAMINE"})
	if len(rep.Knowledge) != 1 {
		t.Error("term matching must be case-insensitive")
	}
}

func TestDerivedFactsSupportWarrant(t *testing.T) {
	// The full § III-A-2 package: exclusive attribution on a clean
	// machine plus knowledge evidence reaches probable cause.
	a := &Analyzer{}
	rep := a.Analyze(soloEvidence(), []string{"c:/stash/img1.jpg"}, []string{"methamphetamine"})
	if len(rep.Facts) < 2 {
		t.Fatalf("facts = %d", len(rep.Facts))
	}
	now := t0.Add(24 * time.Hour)
	if got := court.AssessShowing(rep.Facts, now); got != legal.ShowingProbableCause {
		t.Errorf("showing = %v, want probable cause", got)
	}
}

func TestNonExclusiveFactsFallShort(t *testing.T) {
	ev := soloEvidence()
	ev.Logins = append(ev.Logins, LoginRecord{User: "teen", At: t0, Duration: time.Hour})
	a := &Analyzer{}
	rep := a.Analyze(ev, []string{"c:/stash/img1.jpg"}, nil)
	now := t0.Add(24 * time.Hour)
	if got := court.AssessShowing(rep.Facts, now); got >= legal.ShowingProbableCause {
		t.Errorf("non-exclusive attribution alone gave %v", got)
	}
}

func TestFileEventKindString(t *testing.T) {
	if EventCreated.String() != "created" || EventModified.String() != "modified" || EventOpened.String() != "opened" {
		t.Error("kind names wrong")
	}
	if FileEventKind(9).String() != "FileEventKind(9)" {
		t.Errorf("placeholder = %q", FileEventKind(9).String())
	}
}
