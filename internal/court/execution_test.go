package court

import (
	"errors"
	"testing"
	"time"

	"lawgate/internal/legal"
)

func issuedWarrant(t *testing.T) *Order {
	t.Helper()
	c := newTestCourt()
	o, err := c.Apply(warrantApp())
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestExecuteSearchScope(t *testing.T) {
	o := issuedWarrant(t)
	items := []SearchItem{
		{Name: "image-001.jpg", Category: "child-pornography-images"},
		{Name: "oneswarm.log", Category: "p2p-client-logs"},
		{Name: "ledger.xls", Category: "business-records"},
		{Name: "meth-lab-howto.html", Category: "browsing-history", Incriminating: true, ImmediatelyApparent: true},
		{Name: "stego.bin", Category: "misc", Incriminating: true, ImmediatelyApparent: false},
	}
	res, err := ExecuteSearch(o, testNow.Add(time.Hour), o.Place, items)
	if err != nil {
		t.Fatalf("ExecuteSearch: %v", err)
	}
	if len(res.Seized) != 2 {
		t.Errorf("Seized = %d items, want 2", len(res.Seized))
	}
	if len(res.PlainView) != 1 || res.PlainView[0].Name != "meth-lab-howto.html" {
		t.Errorf("PlainView = %v", res.PlainView)
	}
	// The hidden-incriminating item and the innocuous business record
	// must both be left: incriminating character not immediately
	// apparent is not plain view.
	if len(res.Left) != 2 {
		t.Errorf("Left = %d items, want 2: %v", len(res.Left), res.Left)
	}
}

func TestExecuteSearchExpired(t *testing.T) {
	o := issuedWarrant(t)
	_, err := ExecuteSearch(o, testNow.Add(30*24*time.Hour), o.Place, nil)
	if !errors.Is(err, ErrOrderExpired) {
		t.Fatalf("err = %v, want ErrOrderExpired", err)
	}
}

func TestExecuteSearchWrongPlace(t *testing.T) {
	o := issuedWarrant(t)
	_, err := ExecuteSearch(o, testNow.Add(time.Hour), "456 Other Ave", nil)
	if !errors.Is(err, ErrWrongPlace) {
		t.Fatalf("err = %v, want ErrWrongPlace", err)
	}
}

func TestExecuteSearchRequiresWarrant(t *testing.T) {
	sub := &Order{Process: legal.ProcessSubpoena, ExpiresAt: testNow.Add(time.Hour)}
	if _, err := ExecuteSearch(sub, testNow, "", nil); !errors.Is(err, ErrNotAWarrant) {
		t.Fatalf("err = %v, want ErrNotAWarrant", err)
	}
	if _, err := ExecuteSearch(nil, testNow, "", nil); !errors.Is(err, ErrNotAWarrant) {
		t.Fatalf("nil order: err = %v, want ErrNotAWarrant", err)
	}
}

func TestExecuteSearchEmptyItems(t *testing.T) {
	o := issuedWarrant(t)
	res, err := ExecuteSearch(o, testNow.Add(time.Hour), o.Place, nil)
	if err != nil {
		t.Fatalf("ExecuteSearch: %v", err)
	}
	if len(res.Seized)+len(res.PlainView)+len(res.Left) != 0 {
		t.Errorf("empty search must partition nothing: %+v", res)
	}
}

func TestExecutionPartitionsEveryItem(t *testing.T) {
	o := issuedWarrant(t)
	items := make([]SearchItem, 0, 30)
	for i := 0; i < 30; i++ {
		items = append(items, SearchItem{
			Name:                "f",
			Category:            []string{"child-pornography-images", "x", "y"}[i%3],
			Incriminating:       i%2 == 0,
			ImmediatelyApparent: i%4 == 0,
		})
	}
	res, err := ExecuteSearch(o, testNow.Add(time.Hour), o.Place, items)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Seized) + len(res.PlainView) + len(res.Left); got != len(items) {
		t.Errorf("partition lost items: %d of %d", got, len(items))
	}
}
