// Package court simulates the judicial side of the paper's Section III:
// applications for subpoenas, court orders, and search warrants; the
// evidentiary showings each requires (mere suspicion, specific and
// articulable facts, probable cause); probable-cause assessment from typed
// investigative facts, including the paper's recurring scenarios (probable
// cause through an IP address, through online account information, and the
// staleness doctrine); and warrant execution with particularity, scope,
// expiry, multi-location, and plain-view handling.
package court
