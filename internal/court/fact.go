package court

import (
	"fmt"
	"time"

	"lawgate/internal/legal"
)

// FactKind classifies an investigative fact by its doctrinal weight,
// following the probable-cause scenarios of paper § III-A-1.
type FactKind int

// Fact kinds.
const (
	// FactIPAttribution: an attacker's IP address obtained from a victim
	// or provider and resolved to a subscriber. "Typically, such kind of
	// probable cause is sufficient to obtain a search warrant", even if
	// the suspect ran an unsecured wireless connection.
	FactIPAttribution FactKind = iota + 1
	// FactAccountMembership: membership in an illicit site or group.
	// Membership alone does not always support a warrant (United States
	// v. Coreas); it needs intent evidence alongside.
	FactAccountMembership
	// FactIntentEvidence: evidence of the suspect's intent or knowledge
	// (browsing history, search queries, cookies).
	FactIntentEvidence
	// FactDirectObservation: an officer directly observed criminal
	// conduct.
	FactDirectObservation
	// FactInformantTip: an informant's tip; mere suspicion on its own.
	FactInformantTip
	// FactAnomalousTraffic: suspicious network activity; specific and
	// articulable facts.
	FactAnomalousTraffic
	// FactProviderRecord: provider records linking an account to
	// activity; specific and articulable facts.
	FactProviderRecord
	// FactTimingCorrelation: a statistical traffic-analysis result (the
	// Section-IV techniques); specific and articulable facts supporting
	// further process.
	FactTimingCorrelation
)

var factKindNames = map[FactKind]string{
	FactIPAttribution:     "IP attribution",
	FactAccountMembership: "account membership",
	FactIntentEvidence:    "intent evidence",
	FactDirectObservation: "direct observation",
	FactInformantTip:      "informant tip",
	FactAnomalousTraffic:  "anomalous traffic",
	FactProviderRecord:    "provider record",
	FactTimingCorrelation: "timing correlation",
}

// String returns the human-readable kind.
func (k FactKind) String() string {
	if s, ok := factKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FactKind(%d)", int(k))
}

// Valid reports whether k is a defined fact kind.
func (k FactKind) Valid() bool {
	_, ok := factKindNames[k]
	return ok
}

// Fact is one investigative fact offered in support of an application.
type Fact struct {
	// Kind is the doctrinal classification.
	Kind FactKind
	// Description is free-form detail.
	Description string
	// ObservedAt is when the fact was established.
	ObservedAt time.Time
	// Perishable marks information that can go stale. Per the paper,
	// most computer-crime information "is sufficient to establish the
	// probable cause no matter how old it is" (collections endure,
	// deleted files are recoverable), but "there are still a few cases
	// where some information may be stale".
	Perishable bool
	// ShelfLife bounds a perishable fact's useful age.
	ShelfLife time.Duration
}

// Stale reports whether the fact is too old to support a showing at time
// now. Non-perishable facts never go stale.
func (f Fact) Stale(now time.Time) bool {
	if !f.Perishable {
		return false
	}
	return now.Sub(f.ObservedAt) > f.ShelfLife
}

// AssessShowing computes the strongest showing a set of facts supports at
// time now, per the paper's § III-A-1 scenarios:
//
//   - IP attribution or direct observation establishes probable cause;
//   - account membership plus intent evidence establishes probable cause,
//     while membership alone supports only articulable facts (Coreas);
//   - provider records, anomalous traffic, and timing correlations
//     support articulable facts;
//   - an informant tip alone supports mere suspicion;
//   - stale perishable facts are disregarded.
func AssessShowing(facts []Fact, now time.Time) legal.Showing {
	var (
		membership bool
		intent     bool
	)
	best := legal.ShowingNone
	raise := func(s legal.Showing) {
		if s > best {
			best = s
		}
	}
	for _, f := range facts {
		if !f.Kind.Valid() || f.Stale(now) {
			continue
		}
		switch f.Kind {
		case FactIPAttribution, FactDirectObservation:
			raise(legal.ShowingProbableCause)
		case FactAccountMembership:
			membership = true
			raise(legal.ShowingArticulableFacts)
		case FactIntentEvidence:
			intent = true
			raise(legal.ShowingArticulableFacts)
		case FactAnomalousTraffic, FactProviderRecord, FactTimingCorrelation:
			raise(legal.ShowingArticulableFacts)
		case FactInformantTip:
			raise(legal.ShowingMereSuspicion)
		}
	}
	if membership && intent {
		raise(legal.ShowingProbableCause)
	}
	return best
}
