package court

import (
	"testing"
	"time"

	"lawgate/internal/legal"
)

var testNow = time.Date(2012, time.March, 15, 12, 0, 0, 0, time.UTC)

func fact(kind FactKind) Fact {
	return Fact{Kind: kind, ObservedAt: testNow.Add(-24 * time.Hour)}
}

func TestAssessShowingScenarios(t *testing.T) {
	tests := []struct {
		name  string
		facts []Fact
		want  legal.Showing
	}{
		{
			name:  "no facts",
			facts: nil,
			want:  legal.ShowingNone,
		},
		{
			name:  "informant tip alone is mere suspicion",
			facts: []Fact{fact(FactInformantTip)},
			want:  legal.ShowingMereSuspicion,
		},
		{
			name:  "IP attribution alone is probable cause (paper III-A-1-a)",
			facts: []Fact{fact(FactIPAttribution)},
			want:  legal.ShowingProbableCause,
		},
		{
			name:  "direct observation is probable cause",
			facts: []Fact{fact(FactDirectObservation)},
			want:  legal.ShowingProbableCause,
		},
		{
			name:  "membership alone is only articulable facts (Coreas)",
			facts: []Fact{fact(FactAccountMembership)},
			want:  legal.ShowingArticulableFacts,
		},
		{
			name:  "membership plus intent is probable cause (paper III-A-1-b)",
			facts: []Fact{fact(FactAccountMembership), fact(FactIntentEvidence)},
			want:  legal.ShowingProbableCause,
		},
		{
			name:  "intent evidence alone is articulable facts",
			facts: []Fact{fact(FactIntentEvidence)},
			want:  legal.ShowingArticulableFacts,
		},
		{
			name:  "anomalous traffic is articulable facts",
			facts: []Fact{fact(FactAnomalousTraffic)},
			want:  legal.ShowingArticulableFacts,
		},
		{
			name:  "provider record is articulable facts",
			facts: []Fact{fact(FactProviderRecord)},
			want:  legal.ShowingArticulableFacts,
		},
		{
			name:  "timing correlation is articulable facts (Section IV-B)",
			facts: []Fact{fact(FactTimingCorrelation)},
			want:  legal.ShowingArticulableFacts,
		},
		{
			name:  "strongest fact wins",
			facts: []Fact{fact(FactInformantTip), fact(FactAnomalousTraffic), fact(FactIPAttribution)},
			want:  legal.ShowingProbableCause,
		},
		{
			name:  "invalid kinds are ignored",
			facts: []Fact{{Kind: FactKind(99), ObservedAt: testNow}},
			want:  legal.ShowingNone,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AssessShowing(tt.facts, testNow); got != tt.want {
				t.Errorf("AssessShowing = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStaleness(t *testing.T) {
	// Paper § III-A-1-c: most information supports probable cause "no
	// matter how old it is"; only designated perishable facts go stale.
	ancient := Fact{
		Kind:       FactIPAttribution,
		ObservedAt: testNow.Add(-5 * 365 * 24 * time.Hour),
	}
	if ancient.Stale(testNow) {
		t.Error("non-perishable facts never go stale")
	}
	if got := AssessShowing([]Fact{ancient}, testNow); got != legal.ShowingProbableCause {
		t.Errorf("old non-perishable IP attribution should still be probable cause, got %v", got)
	}

	perished := Fact{
		Kind:       FactAnomalousTraffic,
		ObservedAt: testNow.Add(-72 * time.Hour),
		Perishable: true,
		ShelfLife:  24 * time.Hour,
	}
	if !perished.Stale(testNow) {
		t.Error("perishable fact past its shelf life must be stale")
	}
	if got := AssessShowing([]Fact{perished}, testNow); got != legal.ShowingNone {
		t.Errorf("stale facts must be disregarded; got %v", got)
	}

	fresh := perished
	fresh.ObservedAt = testNow.Add(-1 * time.Hour)
	if fresh.Stale(testNow) {
		t.Error("fresh perishable fact must not be stale")
	}
}

func TestStaleMembershipBlocksProbableCause(t *testing.T) {
	// Membership plus intent is probable cause, but if the intent
	// evidence went stale only membership remains.
	membership := fact(FactAccountMembership)
	staleIntent := Fact{
		Kind:       FactIntentEvidence,
		ObservedAt: testNow.Add(-48 * time.Hour),
		Perishable: true,
		ShelfLife:  time.Hour,
	}
	got := AssessShowing([]Fact{membership, staleIntent}, testNow)
	if got != legal.ShowingArticulableFacts {
		t.Errorf("AssessShowing = %v, want articulable facts", got)
	}
}

func TestFactKindString(t *testing.T) {
	for k := FactIPAttribution; k <= FactTimingCorrelation; k++ {
		if !k.Valid() {
			t.Errorf("kind %d should be valid", int(k))
		}
		if k.String() == "" {
			t.Errorf("kind %d has empty string", int(k))
		}
	}
	if FactKind(0).Valid() {
		t.Error("FactKind(0) should be invalid")
	}
	if FactKind(99).String() != "FactKind(99)" {
		t.Errorf("placeholder = %q", FactKind(99).String())
	}
}
