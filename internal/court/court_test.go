package court

import (
	"errors"
	"testing"
	"time"

	"lawgate/internal/legal"
)

func newTestCourt(opts ...CourtOption) *Court {
	base := []CourtOption{WithCourtClock(func() time.Time { return testNow })}
	return NewCourt(append(base, opts...)...)
}

func warrantApp() Application {
	return Application{
		Process:   legal.ProcessSearchWarrant,
		Facts:     []Fact{fact(FactIPAttribution)},
		Place:     "123 Main St, apartment 4",
		Things:    []string{"child-pornography-images", "p2p-client-logs"},
		Applicant: "agent-a",
	}
}

func TestApplyWarrantGranted(t *testing.T) {
	c := newTestCourt()
	o, err := c.Apply(warrantApp())
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if o.Process != legal.ProcessSearchWarrant {
		t.Errorf("Process = %v", o.Process)
	}
	if o.ShowingFound != legal.ShowingProbableCause {
		t.Errorf("ShowingFound = %v, want probable cause", o.ShowingFound)
	}
	if o.Serial == "" {
		t.Error("order must carry a serial")
	}
	if !o.ExpiresAt.After(o.IssuedAt) {
		t.Error("order must expire after issuance")
	}
	if o.Expired(testNow) {
		t.Error("fresh order must not be expired")
	}
	if !o.Expired(testNow.Add(15 * 24 * time.Hour)) {
		t.Error("order must expire after its lifetime")
	}
}

func TestApplyInsufficientShowing(t *testing.T) {
	c := newTestCourt()
	app := warrantApp()
	app.Facts = []Fact{fact(FactInformantTip)} // mere suspicion
	_, err := c.Apply(app)
	if !errors.Is(err, ErrInsufficientShowing) {
		t.Fatalf("err = %v, want ErrInsufficientShowing", err)
	}
}

func TestApplySubpoenaOnMereSuspicion(t *testing.T) {
	// Paper § II-A: "Merely a suspicion is enough to apply for a
	// subpoena."
	c := newTestCourt()
	o, err := c.Apply(Application{
		Process: legal.ProcessSubpoena,
		Facts:   []Fact{fact(FactInformantTip)},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if o.Process != legal.ProcessSubpoena {
		t.Errorf("Process = %v", o.Process)
	}
}

func TestApplyCourtOrderNeedsArticulableFacts(t *testing.T) {
	c := newTestCourt()
	_, err := c.Apply(Application{
		Process: legal.ProcessCourtOrder,
		Facts:   []Fact{fact(FactInformantTip)},
	})
	if !errors.Is(err, ErrInsufficientShowing) {
		t.Fatalf("tip alone must not support a court order; err = %v", err)
	}
	o, err := c.Apply(Application{
		Process: legal.ProcessCourtOrder,
		Facts:   []Fact{fact(FactAnomalousTraffic)},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if o.ShowingFound != legal.ShowingArticulableFacts {
		t.Errorf("ShowingFound = %v", o.ShowingFound)
	}
}

func TestApplyParticularityRequired(t *testing.T) {
	c := newTestCourt()
	app := warrantApp()
	app.Place = ""
	if _, err := c.Apply(app); !errors.Is(err, ErrLacksParticularity) {
		t.Errorf("missing place: err = %v, want ErrLacksParticularity", err)
	}
	app = warrantApp()
	app.Things = nil
	if _, err := c.Apply(app); !errors.Is(err, ErrLacksParticularity) {
		t.Errorf("missing things: err = %v, want ErrLacksParticularity", err)
	}
	// Subpoenas need no particularity.
	if _, err := c.Apply(Application{
		Process: legal.ProcessSubpoena,
		Facts:   []Fact{fact(FactInformantTip)},
	}); err != nil {
		t.Errorf("subpoena without particularity should issue: %v", err)
	}
}

func TestApplyInvalidProcess(t *testing.T) {
	c := newTestCourt()
	for _, p := range []legal.Process{legal.ProcessNone, legal.Process(0), legal.Process(42)} {
		if _, err := c.Apply(Application{Process: p}); !errors.Is(err, ErrInvalidProcess) {
			t.Errorf("process %d: err = %v, want ErrInvalidProcess", int(p), err)
		}
	}
}

func TestApplyStaleFactsDenied(t *testing.T) {
	c := newTestCourt()
	app := warrantApp()
	app.Facts = []Fact{{
		Kind:       FactIPAttribution,
		ObservedAt: testNow.Add(-30 * 24 * time.Hour),
		Perishable: true,
		ShelfLife:  24 * time.Hour,
	}}
	if _, err := c.Apply(app); !errors.Is(err, ErrInsufficientShowing) {
		t.Errorf("stale facts must be disregarded; err = %v", err)
	}
}

func TestApplyMulti(t *testing.T) {
	c := newTestCourt()
	app := warrantApp()
	orders, err := c.ApplyMulti(app, []string{"office-server-room", "home-study", "colo-rack-12"})
	if err != nil {
		t.Fatalf("ApplyMulti: %v", err)
	}
	if len(orders) != 3 {
		t.Fatalf("got %d orders, want 3", len(orders))
	}
	places := map[string]bool{}
	serials := map[string]bool{}
	for _, o := range orders {
		places[o.Place] = true
		if serials[o.Serial] {
			t.Errorf("duplicate serial %q", o.Serial)
		}
		serials[o.Serial] = true
	}
	if len(places) != 3 {
		t.Errorf("orders must cover distinct places; got %v", places)
	}
}

func TestApplyMultiAllOrNothing(t *testing.T) {
	c := newTestCourt()
	app := warrantApp()
	app.Things = nil // will fail particularity at every location
	if _, err := c.ApplyMulti(app, []string{"a", "b"}); err == nil {
		t.Error("ApplyMulti must fail when any application fails")
	}
	if _, err := c.ApplyMulti(app, nil); !errors.Is(err, ErrMultipleLocations) {
		t.Error("ApplyMulti with no locations must fail")
	}
}

func TestOrderSerialsIncrease(t *testing.T) {
	c := newTestCourt()
	o1, err := c.Apply(warrantApp())
	if err != nil {
		t.Fatal(err)
	}
	o2, err := c.Apply(warrantApp())
	if err != nil {
		t.Fatal(err)
	}
	if o1.Serial == o2.Serial {
		t.Errorf("serials must differ: %q vs %q", o1.Serial, o2.Serial)
	}
}

func TestWarrantLifetimeOption(t *testing.T) {
	c := newTestCourt(WithWarrantLifetime(48 * time.Hour))
	o, err := c.Apply(warrantApp())
	if err != nil {
		t.Fatal(err)
	}
	if got := o.ExpiresAt.Sub(o.IssuedAt); got != 48*time.Hour {
		t.Errorf("lifetime = %v, want 48h", got)
	}
}

func TestOrderCovers(t *testing.T) {
	o := &Order{
		Process: legal.ProcessSearchWarrant,
		Things:  []string{"drug-ledgers"},
	}
	if !o.Covers("drug-ledgers") {
		t.Error("warrant must cover a listed category")
	}
	if o.Covers("firearms") {
		t.Error("warrant must not cover an unlisted category")
	}
	sub := &Order{Process: legal.ProcessSubpoena}
	if !sub.Covers("anything") {
		t.Error("sub-warrant process has no Things particularity")
	}
}
