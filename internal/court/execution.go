package court

import (
	"errors"
	"fmt"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
)

// Execution errors.
var (
	// ErrOrderExpired: the order lapsed before execution.
	ErrOrderExpired = errors.New("court: order expired")
	// ErrWrongPlace: the warrant does not cover the searched place.
	ErrWrongPlace = errors.New("court: place outside warrant")
	// ErrNotAWarrant: search execution requires warrant-tier process.
	ErrNotAWarrant = errors.New("court: execution requires a warrant")
)

// SearchItem is one object encountered while executing a search.
type SearchItem struct {
	// Name labels the item.
	Name string
	// Category is the item's evidentiary category, matched against the
	// warrant's Things.
	Category string
	// Incriminating reports whether the item evidences some crime.
	Incriminating bool
	// ImmediatelyApparent reports whether the incriminating character is
	// apparent without further examination — the plain-view requirement.
	ImmediatelyApparent bool
}

// ExecutionResult partitions the encountered items.
type ExecutionResult struct {
	// Seized items fell within the warrant's scope.
	Seized []SearchItem
	// PlainView items fell outside the scope but were lawfully seized
	// under the plain-view doctrine (paper § III-B-e: "agents examine a
	// computer pursuant to a search warrant and discover evidence of a
	// separate crime").
	PlainView []SearchItem
	// Left items were outside the scope and not plainly incriminating;
	// they must be left alone (the business-records caution of
	// § III-A-2-a).
	Left []SearchItem
}

// Execute runs ExecuteSearch and seals the outcome — seized,
// plain-view, and left counts, or the failure — as a KindExecution
// record on the court's audit ledger. Flows that carry a ledger should
// execute through the court so the search lands on the same sealed
// timeline as the warrant that authorized it.
func (c *Court) Execute(o *Order, now time.Time, place string, items []SearchItem) (ExecutionResult, error) {
	res, err := ExecuteSearch(o, now, place, items)
	serial, proc := "", uint32(0)
	if o != nil {
		serial, proc = o.Serial, uint32(o.Process)
	}
	if err != nil {
		c.seal(now, ledger.KindExecution, proc, "", serial,
			fmt.Sprintf("execution at %q failed: %v", place, err))
		return res, err
	}
	c.seal(now, ledger.KindExecution, proc, "", serial,
		fmt.Sprintf("executed at %q: seized=%d plain-view=%d left=%d",
			place, len(res.Seized), len(res.PlainView), len(res.Left)))
	return res, err
}

// ExecuteSearch executes a warrant at a place over the listed items at
// time now. It fails with ErrNotAWarrant for sub-warrant process,
// ErrOrderExpired after expiry, and ErrWrongPlace for a place the warrant
// does not name.
func ExecuteSearch(o *Order, now time.Time, place string, items []SearchItem) (ExecutionResult, error) {
	if o == nil || o.Process < legal.ProcessSearchWarrant {
		return ExecutionResult{}, ErrNotAWarrant
	}
	if o.Expired(now) {
		return ExecutionResult{}, fmt.Errorf("%w: expired %s, executed %s",
			ErrOrderExpired, o.ExpiresAt.Format(time.RFC3339), now.Format(time.RFC3339))
	}
	if o.Place != place {
		return ExecutionResult{}, fmt.Errorf("%w: warrant names %q, searched %q",
			ErrWrongPlace, o.Place, place)
	}
	var res ExecutionResult
	for _, it := range items {
		switch {
		case o.Covers(it.Category):
			res.Seized = append(res.Seized, it)
		case it.Incriminating && it.ImmediatelyApparent:
			res.PlainView = append(res.PlainView, it)
		default:
			res.Left = append(res.Left, it)
		}
	}
	return res, nil
}
