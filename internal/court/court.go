package court

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
)

// Application errors.
var (
	// ErrInsufficientShowing: the offered facts do not meet the showing
	// the requested process demands.
	ErrInsufficientShowing = errors.New("court: insufficient showing")
	// ErrLacksParticularity: a warrant application must particularly
	// describe the place to be searched and the things to be seized.
	ErrLacksParticularity = errors.New("court: application lacks particularity")
	// ErrMultipleLocations: one warrant covers one location; data in
	// multiple locations needs multiple warrants (paper § III-A-2-a).
	ErrMultipleLocations = errors.New("court: one warrant per location required")
	// ErrInvalidProcess: the requested process level is unknown or is
	// ProcessNone.
	ErrInvalidProcess = errors.New("court: invalid process requested")
)

// Application is a request for legal process.
type Application struct {
	// Process is the process level sought.
	Process legal.Process
	// Facts support the application.
	Facts []Fact
	// Place particularly describes the place to be searched
	// (warrant-tier applications only).
	Place string
	// Things particularly describes the categories to be seized
	// (warrant-tier applications only).
	Things []string
	// Applicant names the requesting officer or unit.
	Applicant string
}

// Order is issued process: a subpoena, court order, search warrant, or
// wiretap order.
type Order struct {
	// Serial is the court-assigned identifier.
	Serial string
	// Process is the granted process level.
	Process legal.Process
	// ShowingFound is the showing the court found the facts to support.
	ShowingFound legal.Showing
	// IssuedAt and ExpiresAt bound the order's life; warrants expire
	// (paper § III-A-2-b: "a search warrant may expire and revoke after
	// a specific time period").
	IssuedAt  time.Time
	ExpiresAt time.Time
	// Place and Things carry the warrant's particularity.
	Place  string
	Things []string
	// Applicant echoes the application.
	Applicant string
}

// Expired reports whether the order has lapsed at time now.
func (o *Order) Expired(now time.Time) bool {
	return now.After(o.ExpiresAt)
}

// Covers reports whether a category of things falls within the order's
// scope. Subpoenas and court orders have no Things particularity and cover
// whatever they compelled; warrants cover only listed categories.
func (o *Order) Covers(category string) bool {
	if o.Process < legal.ProcessSearchWarrant {
		return true
	}
	for _, t := range o.Things {
		if t == category {
			return true
		}
	}
	return false
}

// Court issues process upon a sufficient showing. A Court is safe for
// concurrent use.
type Court struct {
	mu              sync.Mutex
	clock           func() time.Time
	warrantLifetime time.Duration
	serial          int
	// led, when set, receives a sealed record per adjudication:
	// KindAuthorization for issued process, KindAuthorizationDenied for
	// refusals, KindExecution for executed searches.
	led *ledger.Ledger
}

// CourtOption configures a Court.
type CourtOption func(*Court)

// WithCourtClock substitutes the time source.
func WithCourtClock(clock func() time.Time) CourtOption {
	return func(c *Court) { c.clock = clock }
}

// WithWarrantLifetime sets how long issued process remains valid
// (default 14 days, the federal execution window).
func WithWarrantLifetime(d time.Duration) CourtOption {
	return func(c *Court) { c.warrantLifetime = d }
}

// WithCourtLedger seals every adjudication — issuance, denial,
// execution — into the shared audit ledger.
func WithCourtLedger(led *ledger.Ledger) CourtOption {
	return func(c *Court) { c.led = led }
}

// NewCourt returns a Court with a 14-day default process lifetime.
func NewCourt(opts ...CourtOption) *Court {
	c := &Court{
		clock:           time.Now,
		warrantLifetime: 14 * 24 * time.Hour,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Apply adjudicates an application. It returns the issued Order, or an
// error explaining the denial:
//
//   - ErrInvalidProcess for a malformed request;
//   - ErrInsufficientShowing when the facts (after discarding stale ones)
//     do not reach the required showing;
//   - ErrLacksParticularity for a warrant application without place and
//     things.
func (c *Court) Apply(app Application) (*Order, error) {
	if !app.Process.Valid() || app.Process == legal.ProcessNone {
		err := fmt.Errorf("%w: %v", ErrInvalidProcess, app.Process)
		c.seal(c.now(), ledger.KindAuthorizationDenied, uint32(app.Process), app.Applicant, app.Place, err.Error())
		return nil, err
	}
	now := c.now()
	found := AssessShowing(app.Facts, now)
	need := legal.RequiredShowing(app.Process)
	if !found.Sufficient(app.Process) {
		err := fmt.Errorf("%w: %v requires %v, facts support only %v",
			ErrInsufficientShowing, app.Process, need, found)
		c.seal(now, ledger.KindAuthorizationDenied, uint32(app.Process), app.Applicant, app.Place, err.Error())
		return nil, err
	}
	if app.Process >= legal.ProcessSearchWarrant {
		if app.Place == "" || len(app.Things) == 0 {
			err := fmt.Errorf("%w: place=%q, %d thing categories",
				ErrLacksParticularity, app.Place, len(app.Things))
			c.seal(now, ledger.KindAuthorizationDenied, uint32(app.Process), app.Applicant, app.Place, err.Error())
			return nil, err
		}
	}
	c.mu.Lock()
	c.serial++
	serial := fmt.Sprintf("ORD-%04d", c.serial)
	c.mu.Unlock()
	o := &Order{
		Serial:       serial,
		Process:      app.Process,
		ShowingFound: found,
		IssuedAt:     now,
		ExpiresAt:    now.Add(c.warrantLifetime),
		Place:        app.Place,
		Things:       append([]string(nil), app.Things...),
		Applicant:    app.Applicant,
	}
	c.seal(now, ledger.KindAuthorization, uint32(app.Process), app.Applicant, serial,
		fmt.Sprintf("issued %v on %v showing; place=%q; expires %s",
			app.Process, found, app.Place, o.ExpiresAt.Format(time.RFC3339)))
	return o, nil
}

// seal appends one adjudication record to the audit ledger, if one is
// attached.
func (c *Court) seal(at time.Time, kind ledger.Kind, code uint32, actor, subject, note string) {
	if c.led == nil {
		return
	}
	c.led.Append(ledger.Draft{
		At:      at.UnixNano(),
		Kind:    kind,
		Code:    code,
		Actor:   actor,
		Subject: subject,
		Note:    note,
	})
}

// ApplyMulti issues one warrant per location, per the paper's
// multi-location rule: "agents should obtain multiple warrants if they
// have reason to believe that a network search will retrieve data stored
// in multiple locations". All-or-nothing: if any location's application
// fails, no orders are returned.
func (c *Court) ApplyMulti(app Application, locations []string) ([]*Order, error) {
	if len(locations) == 0 {
		return nil, fmt.Errorf("%w: no locations", ErrMultipleLocations)
	}
	orders := make([]*Order, 0, len(locations))
	for _, loc := range locations {
		perLoc := app
		perLoc.Place = loc
		o, err := c.Apply(perLoc)
		if err != nil {
			return nil, fmt.Errorf("location %q: %w", loc, err)
		}
		orders = append(orders, o)
	}
	return orders, nil
}

func (c *Court) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock()
}
