package provider

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lawgate/internal/legal"
)

// Mail-network errors.
var (
	// ErrUnknownProvider: the domain is not registered.
	ErrUnknownProvider = errors.New("provider: unknown provider domain")
	// ErrUnknownTransit: no in-transit message with that ID.
	ErrUnknownTransit = errors.New("provider: unknown in-transit message")
	// ErrInterceptForbidden: the interception lacks the Title III
	// process it requires.
	ErrInterceptForbidden = errors.New("provider: interception requires a wiretap order")
)

// MailNet federates providers: mail sent across it spends a transit
// period between the origin and destination providers, during which the
// Wiretap Act — not the SCA — governs access (paper § III-A-3: the
// Pen/Trap and Wiretap statutes "regulate the real-time data transmission
// over the Internet outside a person's computer").
type MailNet struct {
	mu        sync.Mutex
	clock     func() time.Time
	latency   time.Duration
	providers map[string]*Provider
	transit   map[string]*TransitMessage
	nextID    int
	engine    *legal.Engine
}

// TransitMessage is a message between providers.
type TransitMessage struct {
	// ID identifies the transit record.
	ID string
	// From is the full origin address; ToDomain/ToAccount the
	// destination.
	From, ToDomain, ToAccount string
	// Subject and Body are content; the envelope fields above are
	// addressing.
	Subject string
	Body    []byte
	// DepartedAt and ArrivesAt bound the transit window.
	DepartedAt, ArrivesAt time.Time
}

// MailNetOption configures a MailNet.
type MailNetOption func(*MailNet)

// WithMailClock substitutes the time source.
func WithMailClock(clock func() time.Time) MailNetOption {
	return func(m *MailNet) { m.clock = clock }
}

// WithMailLatency sets the transit duration (default one minute).
func WithMailLatency(d time.Duration) MailNetOption {
	return func(m *MailNet) { m.latency = d }
}

// NewMailNet returns an empty federation.
func NewMailNet(opts ...MailNetOption) *MailNet {
	m := &MailNet{
		clock:     time.Now,
		latency:   time.Minute,
		providers: make(map[string]*Provider),
		transit:   make(map[string]*TransitMessage),
		engine:    legal.NewEngine(),
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// Register attaches a provider under a mail domain.
func (m *MailNet) Register(domain string, p *Provider) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.providers[domain] = p
}

// Send originates a message; it enters transit and must be Flushed (time
// advanced past ArrivesAt) to land in the destination mailbox.
func (m *MailNet) Send(from, toDomain, toAccount, subject string, body []byte) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.providers[toDomain]; !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownProvider, toDomain)
	}
	m.nextID++
	now := m.clock()
	tm := &TransitMessage{
		ID:         fmt.Sprintf("transit-%04d", m.nextID),
		From:       from,
		ToDomain:   toDomain,
		ToAccount:  toAccount,
		Subject:    subject,
		Body:       append([]byte(nil), body...),
		DepartedAt: now,
		ArrivesAt:  now.Add(m.latency),
	}
	m.transit[tm.ID] = tm
	return tm.ID, nil
}

// Flush delivers every transit message whose arrival time has passed,
// returning the provider-assigned message IDs keyed by transit ID.
// Messages are attempted in transit-ID order; a failed delivery leaves
// its message in transit and is reported after the rest are attempted,
// so the returned map always holds the partial delivery alongside any
// error rather than discarding it.
func (m *MailNet) Flush() (map[string]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock()
	ids := make([]string, 0, len(m.transit))
	for id := range m.transit {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	delivered := make(map[string]string)
	var bytes int64
	var errs []error
	for _, id := range ids {
		tm := m.transit[id]
		if now.Before(tm.ArrivesAt) {
			continue
		}
		p := m.providers[tm.ToDomain]
		msgID, err := p.Deliver(tm.From, tm.ToAccount, tm.Subject, tm.Body)
		if err != nil {
			errs = append(errs, fmt.Errorf("provider: delivering %s: %w", id, err))
			continue
		}
		delivered[id] = msgID
		bytes += int64(len(tm.Body))
		delete(m.transit, id)
	}
	if len(errs) > 0 {
		errs = append(errs, fmt.Errorf("provider: partial flush: %d messages (%d bytes) delivered, %d failed and remain in transit",
			len(delivered), bytes, len(errs)))
		return delivered, errors.Join(errs...)
	}
	return delivered, nil
}

// InTransit reports how many messages are currently between providers.
func (m *MailNet) InTransit() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.transit)
}

// InterceptEnvelope collects a transit message's addressing information —
// FROM/TO, sizes, times. Non-content: a pen/trap order suffices.
func (m *MailNet) InterceptEnvelope(held legal.Process, transitID string) (from, to string, size int, err error) {
	ruling, err := m.engine.Evaluate(legal.Action{
		Name:   "intercept-envelope",
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingRealTime,
		Data:   legal.DataAddressing,
		Source: legal.SourceThirdPartyNetwork,
	})
	if err != nil {
		return "", "", 0, err
	}
	if !held.Satisfies(ruling.Required) {
		return "", "", 0, fmt.Errorf("%w: envelope interception requires %s", ErrInsufficientProcess, ruling.Required)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	tm, ok := m.transit[transitID]
	if !ok {
		return "", "", 0, fmt.Errorf("%w: %q", ErrUnknownTransit, transitID)
	}
	return tm.From, tm.ToDomain + ":" + tm.ToAccount, len(tm.Body), nil
}

// InterceptContent acquires a transit message's subject and body — a
// real-time content interception demanding a Title III order.
func (m *MailNet) InterceptContent(held legal.Process, transitID string) (TransitMessage, error) {
	ruling, err := m.engine.Evaluate(legal.Action{
		Name:   "intercept-content",
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingRealTime,
		Data:   legal.DataContent,
		Source: legal.SourceThirdPartyNetwork,
	})
	if err != nil {
		return TransitMessage{}, err
	}
	if !held.Satisfies(ruling.Required) {
		return TransitMessage{}, fmt.Errorf("%w: held %s", ErrInterceptForbidden, held)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	tm, ok := m.transit[transitID]
	if !ok {
		return TransitMessage{}, fmt.Errorf("%w: %q", ErrUnknownTransit, transitID)
	}
	cp := *tm
	cp.Body = append([]byte(nil), tm.Body...)
	return cp, nil
}
