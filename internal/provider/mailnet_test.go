package provider

import (
	"errors"
	"strings"
	"testing"
	"time"

	"lawgate/internal/legal"
)

func newMailNet(t *testing.T) (*MailNet, *Provider, *Provider) {
	t.Helper()
	gmail := newGmail(t)
	uni := newUniversity(t)
	m := NewMailNet(WithMailClock(fixedClock()), WithMailLatency(30*time.Second))
	m.Register("gmail.com", gmail)
	m.Register("cs.charlie.edu", uni)
	return m, gmail, uni
}

func TestMailTransitAndDelivery(t *testing.T) {
	m, gmail, _ := newMailNet(t)
	id, err := m.Send("alice@cs.charlie.edu", "gmail.com", "bob", "lunch?", []byte("noon"))
	if err != nil {
		t.Fatal(err)
	}
	if m.InTransit() != 1 {
		t.Fatalf("in transit = %d", m.InTransit())
	}
	// The fixed clock advances one minute per call, so the 30-second
	// transit has elapsed by the next observation.
	delivered, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	msgID, ok := delivered[id]
	if !ok {
		t.Fatalf("transit %s not delivered: %v", id, delivered)
	}
	if m.InTransit() != 0 {
		t.Errorf("in transit after flush = %d", m.InTransit())
	}
	msg, err := gmail.Message("bob", msgID)
	if err != nil {
		t.Fatal(err)
	}
	if msg.State != StateStoredUnopened || string(msg.Body) != "noon" {
		t.Errorf("delivered message = %+v", msg)
	}
	// Post-delivery, the SCA role analysis applies as usual.
	role, err := gmail.RoleFor("bob", msgID)
	if err != nil {
		t.Fatal(err)
	}
	if role != legal.ProviderECS {
		t.Errorf("role = %v, want ECS", role)
	}
}

func TestMailFlushBeforeArrival(t *testing.T) {
	gmail := newGmail(t)
	m := NewMailNet(WithMailClock(fixedClock()), WithMailLatency(24*time.Hour))
	m.Register("gmail.com", gmail)
	if _, err := m.Send("x@y", "gmail.com", "bob", "s", nil); err != nil {
		t.Fatal(err)
	}
	delivered, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 0 || m.InTransit() != 1 {
		t.Error("message delivered before its arrival time")
	}
}

func TestMailUnknownDomain(t *testing.T) {
	m, _, _ := newMailNet(t)
	if _, err := m.Send("a@b", "nowhere.example", "x", "s", nil); !errors.Is(err, ErrUnknownProvider) {
		t.Errorf("err = %v, want ErrUnknownProvider", err)
	}
}

func TestEnvelopeInterception(t *testing.T) {
	m, _, _ := newMailNet(t)
	id, err := m.Send("alice@cs.charlie.edu", "gmail.com", "bob", "secret subject", []byte("secret body"))
	if err != nil {
		t.Fatal(err)
	}
	// Without process: refused.
	if _, _, _, err := m.InterceptEnvelope(legal.ProcessNone, id); !errors.Is(err, ErrInsufficientProcess) {
		t.Errorf("no-process envelope err = %v", err)
	}
	// A pen/trap order suffices for the envelope.
	from, to, size, err := m.InterceptEnvelope(legal.ProcessCourtOrder, id)
	if err != nil {
		t.Fatal(err)
	}
	if from != "alice@cs.charlie.edu" || to != "gmail.com:bob" || size != len("secret body") {
		t.Errorf("envelope = %q -> %q (%d bytes)", from, to, size)
	}
	if _, _, _, err := m.InterceptEnvelope(legal.ProcessCourtOrder, "transit-9999"); !errors.Is(err, ErrUnknownTransit) {
		t.Errorf("unknown transit err = %v", err)
	}
}

func TestContentInterceptionNeedsTitleIII(t *testing.T) {
	m, _, _ := newMailNet(t)
	id, err := m.Send("alice@cs.charlie.edu", "gmail.com", "bob", "secret subject", []byte("secret body"))
	if err != nil {
		t.Fatal(err)
	}
	// Even a search warrant is not enough in real time.
	if _, err := m.InterceptContent(legal.ProcessSearchWarrant, id); !errors.Is(err, ErrInterceptForbidden) {
		t.Errorf("warrant content err = %v", err)
	}
	tm, err := m.InterceptContent(legal.ProcessWiretapOrder, id)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Subject != "secret subject" || string(tm.Body) != "secret body" {
		t.Errorf("intercepted = %+v", tm)
	}
	// The interception is a copy; transit continues and delivery still
	// happens.
	if m.InTransit() != 1 {
		t.Error("interception must not remove the message from transit")
	}
	if _, err := m.InterceptContent(legal.ProcessWiretapOrder, "transit-9999"); !errors.Is(err, ErrUnknownTransit) {
		t.Errorf("unknown transit err = %v", err)
	}
}

// The statutory regime shifts across the message lifecycle: Title III in
// transit, SCA warrant once stored — the same content, two regimes, per
// paper § III-A-3.
func TestRegimeShiftAcrossLifecycle(t *testing.T) {
	m, gmail, _ := newMailNet(t)
	id, err := m.Send("alice@cs.charlie.edu", "gmail.com", "bob", "s", []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	// In transit: wiretap order required (warrant refused above-style).
	if _, err := m.InterceptContent(legal.ProcessSearchWarrant, id); !errors.Is(err, ErrInterceptForbidden) {
		t.Fatalf("in-transit warrant err = %v", err)
	}
	delivered, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// Stored: a warrant now suffices under § 2703.
	if _, err := gmail.Compel(legal.ProcessSearchWarrant, TierContent, "bob"); err != nil {
		t.Fatalf("stored compel: %v", err)
	}
	_ = delivered
}

func TestMailFlushPartialDelivery(t *testing.T) {
	m, gmail, _ := newMailNet(t)
	okID, err := m.Send("alice@cs.charlie.edu", "gmail.com", "bob", "lunch?", []byte("noon"))
	if err != nil {
		t.Fatal(err)
	}
	badID, err := m.Send("alice@cs.charlie.edu", "gmail.com", "nobody", "ghost", []byte("boo"))
	if err != nil {
		t.Fatal(err)
	}
	delivered, err := m.Flush()
	if !errors.Is(err, ErrUnknownAccount) {
		t.Fatalf("err = %v, want ErrUnknownAccount", err)
	}
	// The failure must not discard the partial delivery: the good
	// message landed and is reported.
	msgID, ok := delivered[okID]
	if len(delivered) != 1 || !ok {
		t.Fatalf("partial flush delivered %v, want only %s", delivered, okID)
	}
	if _, err := gmail.Message("bob", msgID); err != nil {
		t.Errorf("delivered message not in mailbox: %v", err)
	}
	// The error accounts for the evidence obtained and the failure.
	for _, want := range []string{badID, "1 messages (4 bytes) delivered", "1 failed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	// The failed message stays in transit for a later retry.
	if m.InTransit() != 1 {
		t.Errorf("in transit after partial flush = %d, want 1", m.InTransit())
	}
	if delivered, err = m.Flush(); err == nil || len(delivered) != 0 {
		t.Errorf("retry flush = (%v, %v), want same failure", delivered, err)
	}
}

func TestMailFlushDeterministicErrorOrder(t *testing.T) {
	m, _, _ := newMailNet(t)
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := m.Send("alice@cs.charlie.edu", "gmail.com", "nobody", "s", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	_, err := m.Flush()
	if err == nil {
		t.Fatal("flush of undeliverable messages succeeded")
	}
	// Failures are reported in transit-ID order regardless of map
	// iteration order.
	msg := err.Error()
	prev := -1
	for _, id := range ids {
		at := strings.Index(msg, id)
		if at < 0 || at < prev {
			t.Fatalf("error order wrong for %s in %q", id, msg)
		}
		prev = at
	}
}
