// Package provider simulates Internet service providers as the Stored
// Communications Act sees them: subscriber records with IP-lease history
// (the "probable cause through an IP address" flow of § III-A-1-a), a
// message store whose provider role transitions exactly as the paper's
// Alice/Bob example describes (ECS while a message is in transit or
// unretrieved; RCS once a public provider stores an opened message;
// neither for a non-public provider, dropping the message out of the SCA),
// compelled disclosure under § 2703's process tiers, and voluntary
// disclosure under § 2702's restraints and exceptions.
package provider

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lawgate/internal/legal"
)

// Provider errors.
var (
	// ErrUnknownAccount: no such subscriber.
	ErrUnknownAccount = errors.New("provider: unknown account")
	// ErrUnknownMessage: no such message.
	ErrUnknownMessage = errors.New("provider: unknown message")
	// ErrInsufficientProcess: the process offered does not reach the
	// tier compelled (§ 2703).
	ErrInsufficientProcess = errors.New("provider: insufficient process for tier")
	// ErrDisclosureForbidden: § 2702 forbids the voluntary disclosure.
	ErrDisclosureForbidden = errors.New("provider: voluntary disclosure forbidden")
	// ErrNoLease: no subscriber held the IP at the given time.
	ErrNoLease = errors.New("provider: no subscriber held that address at that time")
)

// Tier identifies what class of stored information is sought, mirroring
// § 2703's ladder.
type Tier int

// Disclosure tiers.
const (
	// TierBasicSubscriber: name, address, session logs, assigned IPs —
	// a subpoena suffices.
	TierBasicSubscriber Tier = iota + 1
	// TierRecords: other non-content transactional records — a
	// § 2703(d) court order.
	TierRecords
	// TierContent: contents of communications — a search warrant
	// ("a search warrant can disclose everything").
	TierContent
)

var tierNames = map[Tier]string{
	TierBasicSubscriber: "basic subscriber information",
	TierRecords:         "transactional records",
	TierContent:         "content",
}

// String returns the tier name.
func (t Tier) String() string {
	if s, ok := tierNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// RequiredProcess returns the § 2703 process the tier demands.
func (t Tier) RequiredProcess() legal.Process {
	switch t {
	case TierBasicSubscriber:
		return legal.ProcessSubpoena
	case TierRecords:
		return legal.ProcessCourtOrder
	case TierContent:
		return legal.ProcessSearchWarrant
	default:
		return legal.ProcessSearchWarrant
	}
}

// IPLease records a subscriber's tenure on an address.
type IPLease struct {
	// IP is the leased address.
	IP string
	// From and To bound the lease; a zero To means the lease is open.
	From, To time.Time
}

// active reports whether the lease covers time at.
func (l IPLease) active(at time.Time) bool {
	if at.Before(l.From) {
		return false
	}
	return l.To.IsZero() || !at.After(l.To)
}

// Subscriber is one customer's basic subscriber information.
type Subscriber struct {
	// Account is the login or account identifier.
	Account string
	// Name and Street are identifying information.
	Name, Street string
	// Leases is the IP assignment history.
	Leases []IPLease
}

// MessageState tracks a stored communication's lifecycle.
type MessageState int

// Message states.
const (
	// StateStoredUnopened: delivered to the mailbox, not yet retrieved;
	// the provider is an ECS with respect to it.
	StateStoredUnopened MessageState = iota + 1
	// StateOpenedStored: retrieved and left in storage.
	StateOpenedStored
	// StateDeleted: removed by the user.
	StateDeleted
)

var messageStateNames = map[MessageState]string{
	StateStoredUnopened: "stored-unopened",
	StateOpenedStored:   "opened-stored",
	StateDeleted:        "deleted",
}

// String returns the state name.
func (s MessageState) String() string {
	if n, ok := messageStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("MessageState(%d)", int(s))
}

// Message is one stored communication.
type Message struct {
	// ID is provider-assigned.
	ID string
	// From and To are addresses.
	From, To string
	// Subject is content for Title III purposes; Body is content.
	Subject string
	Body    []byte
	// State is the lifecycle position.
	State MessageState
	// ArrivedAt and OpenedAt are lifecycle timestamps.
	ArrivedAt, OpenedAt time.Time
}

// Recipient identifies who receives a voluntary disclosure.
type Recipient int

// Disclosure recipients.
const (
	// RecipientGovernment is a government entity.
	RecipientGovernment Recipient = iota + 1
	// RecipientPrivate is a non-government entity.
	RecipientPrivate
)

// Basis is the claimed ground for a voluntary disclosure (§ 2702's
// exceptions).
type Basis int

// Voluntary-disclosure bases.
const (
	// BasisNone: no exception claimed.
	BasisNone Basis = iota + 1
	// BasisUserConsent: the user consented.
	BasisUserConsent
	// BasisEmergency: an emergency involving danger of death or serious
	// injury.
	BasisEmergency
	// BasisProtectRights: protection of the provider's rights and
	// property.
	BasisProtectRights
)

// Provider simulates one service provider. Safe for concurrent use.
type Provider struct {
	// Name labels the provider.
	Name string
	// Public reports whether services are offered to the public; the
	// SCA's RCS definition and § 2702's restraints reach only public
	// providers.
	Public bool

	mu          sync.Mutex
	clock       func() time.Time
	subscribers map[string]*Subscriber
	mailboxes   map[string][]*Message
	preserved   map[string]preservation
	nextMsg     int
}

// preservation is a § 2703(f) snapshot of an account pending process.
type preservation struct {
	until    time.Time
	messages []Message
}

// Option configures a Provider.
type Option func(*Provider)

// WithProviderClock substitutes the time source.
func WithProviderClock(clock func() time.Time) Option {
	return func(p *Provider) { p.clock = clock }
}

// New returns a provider. public marks providers offering services to the
// public (a commercial webmail service) as opposed to, say, a university
// serving only its members.
func New(name string, public bool, opts ...Option) *Provider {
	p := &Provider{
		Name:        name,
		Public:      public,
		clock:       time.Now,
		subscribers: make(map[string]*Subscriber),
		mailboxes:   make(map[string][]*Message),
		preserved:   make(map[string]preservation),
	}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// AddSubscriber registers a customer.
func (p *Provider) AddSubscriber(s Subscriber) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cp := s
	cp.Leases = append([]IPLease(nil), s.Leases...)
	p.subscribers[s.Account] = &cp
	if _, ok := p.mailboxes[s.Account]; !ok {
		p.mailboxes[s.Account] = nil
	}
}

// Deliver places a message in the recipient account's mailbox in the
// stored-unopened state and returns its ID.
func (p *Provider) Deliver(from, toAccount, subject string, body []byte) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.subscribers[toAccount]; !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownAccount, toAccount)
	}
	p.nextMsg++
	m := &Message{
		ID:        fmt.Sprintf("%s-msg-%04d", p.Name, p.nextMsg),
		From:      from,
		To:        toAccount,
		Subject:   subject,
		Body:      append([]byte(nil), body...),
		State:     StateStoredUnopened,
		ArrivedAt: p.clock(),
	}
	p.mailboxes[toAccount] = append(p.mailboxes[toAccount], m)
	return m.ID, nil
}

// Open marks a message retrieved by its owner, transitioning it to
// opened-stored.
func (p *Provider) Open(account, msgID string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, err := p.findLocked(account, msgID)
	if err != nil {
		return err
	}
	if m.State == StateStoredUnopened {
		m.State = StateOpenedStored
		m.OpenedAt = p.clock()
	}
	return nil
}

// Delete marks a message deleted by its owner.
func (p *Provider) Delete(account, msgID string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, err := p.findLocked(account, msgID)
	if err != nil {
		return err
	}
	m.State = StateDeleted
	return nil
}

// Message returns a copy of the message.
func (p *Provider) Message(account, msgID string) (Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, err := p.findLocked(account, msgID)
	if err != nil {
		return Message{}, err
	}
	return cloneMessage(m), nil
}

// RoleFor returns the provider's SCA role with respect to the message,
// per the paper's Alice/Bob example:
//
//   - stored-unopened → ECS;
//   - opened-stored at a public provider → RCS;
//   - opened-stored at a non-public provider → neither (the message
//     "drops out of the SCA" and the Fourth Amendment alone governs);
//   - deleted → neither.
func (p *Provider) RoleFor(account, msgID string) (legal.ProviderRole, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, err := p.findLocked(account, msgID)
	if err != nil {
		return 0, err
	}
	switch m.State {
	case StateStoredUnopened:
		return legal.ProviderECS, nil
	case StateOpenedStored:
		if p.Public {
			return legal.ProviderRCS, nil
		}
		return legal.ProviderNone, nil
	default:
		return legal.ProviderNone, nil
	}
}

// DefaultPreservation is the § 2703(f) retention window: "records …
// shall be retained for a period of 90 days".
const DefaultPreservation = 90 * 24 * time.Hour

// Preserve executes a § 2703(f) preservation request: the provider
// snapshots the account's current undeleted messages and retains the
// snapshot for the given duration (DefaultPreservation when zero) pending
// the government's process. No process is required for the request itself;
// preserved copies survive later user deletion and are produced by Compel
// at the content tier.
func (p *Provider) Preserve(account string, retain time.Duration) error {
	if retain <= 0 {
		retain = DefaultPreservation
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.subscribers[account]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAccount, account)
	}
	snap := preservation{until: p.clock().Add(retain)}
	for _, m := range p.mailboxes[account] {
		if m.State != StateDeleted {
			snap.messages = append(snap.messages, cloneMessage(m))
		}
	}
	p.preserved[account] = snap
	return nil
}

// Disclosure is what a provider hands over.
type Disclosure struct {
	// Tier echoes what was compelled or volunteered.
	Tier Tier
	// Subscriber is populated for the basic-subscriber tier.
	Subscriber *Subscriber
	// Records is populated for the records tier.
	Records []string
	// Messages is populated for the content tier.
	Messages []Message
}

// Compel is § 2703 required disclosure: the government presents process;
// the provider verifies it reaches the tier. A stronger process unlocks
// every lower tier ("a search warrant can disclose everything").
func (p *Provider) Compel(process legal.Process, tier Tier, account string) (Disclosure, error) {
	if need := tier.RequiredProcess(); !process.Satisfies(need) {
		return Disclosure{}, fmt.Errorf("%w: %s requires %s, presented %s",
			ErrInsufficientProcess, tier, need, process)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sub, ok := p.subscribers[account]
	if !ok {
		return Disclosure{}, fmt.Errorf("%w: %q", ErrUnknownAccount, account)
	}
	d := Disclosure{Tier: tier}
	switch tier {
	case TierBasicSubscriber:
		cp := *sub
		cp.Leases = append([]IPLease(nil), sub.Leases...)
		d.Subscriber = &cp
	case TierRecords:
		for _, m := range p.mailboxes[account] {
			d.Records = append(d.Records, fmt.Sprintf(
				"msg %s: %s -> %s at %s (%d bytes)",
				m.ID, m.From, m.To, m.ArrivedAt.Format(time.RFC3339), len(m.Body)))
		}
	case TierContent:
		have := make(map[string]bool)
		for _, m := range p.mailboxes[account] {
			if m.State != StateDeleted {
				d.Messages = append(d.Messages, cloneMessage(m))
				have[m.ID] = true
			}
		}
		// A live § 2703(f) preservation produces messages the user
		// has since deleted.
		if snap, ok := p.preserved[account]; ok && !p.clock().After(snap.until) {
			for _, m := range snap.messages {
				if !have[m.ID] {
					cp := m
					cp.Body = append([]byte(nil), m.Body...)
					d.Messages = append(d.Messages, cp)
				}
			}
		}
	}
	return d, nil
}

// VoluntaryDisclose applies § 2702: a public provider may not volunteer
// content to anyone, or records to the government, absent an exception
// (user consent, emergency, protection of its rights); it may give
// non-content to non-government entities. Providers not serving the
// public "may freely disclose both contents and non-content records."
func (p *Provider) VoluntaryDisclose(tier Tier, to Recipient, basis Basis, account string) (Disclosure, error) {
	if p.Public && !p.volExceptionApplies(basis) {
		forbidden := tier == TierContent ||
			(to == RecipientGovernment && (tier == TierRecords || tier == TierBasicSubscriber))
		if forbidden {
			return Disclosure{}, fmt.Errorf("%w: public provider, %s to %s without exception",
				ErrDisclosureForbidden, tier, recipientName(to))
		}
	}
	// Disclosure content mirrors Compel's, bypassing the process check.
	return p.Compel(legal.ProcessWiretapOrder, tier, account)
}

func (p *Provider) volExceptionApplies(b Basis) bool {
	switch b {
	case BasisUserConsent, BasisEmergency, BasisProtectRights:
		return true
	default:
		return false
	}
}

func recipientName(r Recipient) string {
	if r == RecipientGovernment {
		return "government"
	}
	return "private party"
}

// SubscriberByIP resolves which subscriber held an address at a time —
// the step a subpoena compels in the paper's IP-attribution scenario.
func (p *Provider) SubscriberByIP(process legal.Process, ip string, at time.Time) (Subscriber, error) {
	if !process.Satisfies(legal.ProcessSubpoena) {
		return Subscriber{}, fmt.Errorf("%w: IP attribution requires at least a subpoena",
			ErrInsufficientProcess)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.subscribers {
		for _, l := range s.Leases {
			if l.IP == ip && l.active(at) {
				cp := *s
				cp.Leases = append([]IPLease(nil), s.Leases...)
				return cp, nil
			}
		}
	}
	return Subscriber{}, fmt.Errorf("%w: %s at %s", ErrNoLease, ip, at.Format(time.RFC3339))
}

func (p *Provider) findLocked(account, msgID string) (*Message, error) {
	if _, ok := p.subscribers[account]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAccount, account)
	}
	for _, m := range p.mailboxes[account] {
		if m.ID == msgID {
			return m, nil
		}
	}
	return nil, fmt.Errorf("%w: %q in %q", ErrUnknownMessage, msgID, account)
}

func cloneMessage(m *Message) Message {
	cp := *m
	cp.Body = append([]byte(nil), m.Body...)
	return cp
}
