package provider

import (
	"errors"
	"testing"
	"time"

	"lawgate/internal/legal"
)

var pNow = time.Date(2012, time.April, 2, 10, 0, 0, 0, time.UTC)

func fixedClock() func() time.Time {
	t := pNow
	return func() time.Time {
		t = t.Add(time.Minute)
		return t
	}
}

func newGmail(t *testing.T) *Provider {
	t.Helper()
	p := New("gmail", true, WithProviderClock(fixedClock()))
	p.AddSubscriber(Subscriber{
		Account: "bob",
		Name:    "Bob B.",
		Street:  "7 Elm St",
		Leases: []IPLease{
			{IP: "10.0.0.7", From: pNow.Add(-24 * time.Hour), To: pNow.Add(24 * time.Hour)},
			{IP: "10.0.0.9", From: pNow.Add(48 * time.Hour)},
		},
	})
	return p
}

func newUniversity(t *testing.T) *Provider {
	t.Helper()
	p := New("charlie-university", false, WithProviderClock(fixedClock()))
	p.AddSubscriber(Subscriber{Account: "alice", Name: "Alice A."})
	return p
}

func TestAliceBobLifecycle(t *testing.T) {
	// The paper's § III-A-3 example, end to end.
	gmail := newGmail(t)
	uni := newUniversity(t)

	// Alice -> Bob at gmail: ECS until Bob opens it, then RCS.
	id, err := gmail.Deliver("alice@cs.charlie.edu", "bob", "hi", []byte("lunch?"))
	if err != nil {
		t.Fatal(err)
	}
	role, err := gmail.RoleFor("bob", id)
	if err != nil {
		t.Fatal(err)
	}
	if role != legal.ProviderECS {
		t.Errorf("unopened at public provider: role = %v, want ECS", role)
	}
	if err := gmail.Open("bob", id); err != nil {
		t.Fatal(err)
	}
	role, err = gmail.RoleFor("bob", id)
	if err != nil {
		t.Fatal(err)
	}
	if role != legal.ProviderRCS {
		t.Errorf("opened at public provider: role = %v, want RCS", role)
	}

	// Bob -> Alice at the university: ECS until Alice opens it, then
	// NEITHER — the message drops out of the SCA.
	id2, err := uni.Deliver("bob@gmail.com", "alice", "re: hi", []byte("yes"))
	if err != nil {
		t.Fatal(err)
	}
	role, err = uni.RoleFor("alice", id2)
	if err != nil {
		t.Fatal(err)
	}
	if role != legal.ProviderECS {
		t.Errorf("unopened at university: role = %v, want ECS", role)
	}
	if err := uni.Open("alice", id2); err != nil {
		t.Fatal(err)
	}
	role, err = uni.RoleFor("alice", id2)
	if err != nil {
		t.Fatal(err)
	}
	if role != legal.ProviderNone {
		t.Errorf("opened at non-public provider: role = %v, want neither", role)
	}
}

func TestRoleForDeleted(t *testing.T) {
	gmail := newGmail(t)
	id, err := gmail.Deliver("x", "bob", "s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := gmail.Delete("bob", id); err != nil {
		t.Fatal(err)
	}
	role, err := gmail.RoleFor("bob", id)
	if err != nil {
		t.Fatal(err)
	}
	if role != legal.ProviderNone {
		t.Errorf("deleted message role = %v, want neither", role)
	}
}

func TestMessageStateTransitions(t *testing.T) {
	gmail := newGmail(t)
	id, err := gmail.Deliver("x@y", "bob", "s", []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := gmail.Message("bob", id)
	if err != nil {
		t.Fatal(err)
	}
	if m.State != StateStoredUnopened || m.ArrivedAt.IsZero() {
		t.Errorf("fresh message: %+v", m)
	}
	if err := gmail.Open("bob", id); err != nil {
		t.Fatal(err)
	}
	m, _ = gmail.Message("bob", id)
	if m.State != StateOpenedStored || m.OpenedAt.IsZero() {
		t.Errorf("opened message: %+v", m)
	}
	// Re-opening is a no-op.
	openedAt := m.OpenedAt
	if err := gmail.Open("bob", id); err != nil {
		t.Fatal(err)
	}
	m, _ = gmail.Message("bob", id)
	if !m.OpenedAt.Equal(openedAt) {
		t.Error("re-open must not update OpenedAt")
	}
}

func TestCompelTiers(t *testing.T) {
	gmail := newGmail(t)
	if _, err := gmail.Deliver("x@y", "bob", "s", []byte("body")); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		tier    Tier
		process legal.Process
		wantErr bool
	}{
		{TierBasicSubscriber, legal.ProcessSubpoena, false},
		{TierBasicSubscriber, legal.ProcessNone, true},
		{TierRecords, legal.ProcessCourtOrder, false},
		{TierRecords, legal.ProcessSubpoena, true},
		{TierContent, legal.ProcessSearchWarrant, false},
		{TierContent, legal.ProcessCourtOrder, true},
		// "A search warrant can disclose everything."
		{TierBasicSubscriber, legal.ProcessSearchWarrant, false},
		{TierRecords, legal.ProcessSearchWarrant, false},
	}
	for _, tt := range tests {
		_, err := gmail.Compel(tt.process, tt.tier, "bob")
		if tt.wantErr && !errors.Is(err, ErrInsufficientProcess) {
			t.Errorf("Compel(%v, %v): err = %v, want ErrInsufficientProcess", tt.process, tt.tier, err)
		}
		if !tt.wantErr && err != nil {
			t.Errorf("Compel(%v, %v): %v", tt.process, tt.tier, err)
		}
	}
}

func TestCompelPayloads(t *testing.T) {
	gmail := newGmail(t)
	id, err := gmail.Deliver("x@y", "bob", "s", []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := gmail.Compel(legal.ProcessSubpoena, TierBasicSubscriber, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if d.Subscriber == nil || d.Subscriber.Name != "Bob B." {
		t.Errorf("BSI disclosure: %+v", d.Subscriber)
	}
	d, err = gmail.Compel(legal.ProcessCourtOrder, TierRecords, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Records) != 1 {
		t.Errorf("records disclosure: %v", d.Records)
	}
	d, err = gmail.Compel(legal.ProcessSearchWarrant, TierContent, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Messages) != 1 || string(d.Messages[0].Body) != "body" {
		t.Errorf("content disclosure: %+v", d.Messages)
	}
	// Deleted messages are not disclosed.
	if err := gmail.Delete("bob", id); err != nil {
		t.Fatal(err)
	}
	d, err = gmail.Compel(legal.ProcessSearchWarrant, TierContent, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Messages) != 0 {
		t.Errorf("deleted message disclosed: %+v", d.Messages)
	}
	if _, err := gmail.Compel(legal.ProcessSearchWarrant, TierContent, "ghost"); !errors.Is(err, ErrUnknownAccount) {
		t.Errorf("unknown account err = %v", err)
	}
}

func TestVoluntaryDisclosurePublicProvider(t *testing.T) {
	gmail := newGmail(t)
	if _, err := gmail.Deliver("x@y", "bob", "s", []byte("b")); err != nil {
		t.Fatal(err)
	}
	// Content to anyone without an exception: forbidden.
	if _, err := gmail.VoluntaryDisclose(TierContent, RecipientGovernment, BasisNone, "bob"); !errors.Is(err, ErrDisclosureForbidden) {
		t.Errorf("content to government: err = %v", err)
	}
	if _, err := gmail.VoluntaryDisclose(TierContent, RecipientPrivate, BasisNone, "bob"); !errors.Is(err, ErrDisclosureForbidden) {
		t.Errorf("content to private party: err = %v", err)
	}
	// Records to government without exception: forbidden; to private
	// parties: allowed ("any public providers can disclose non-content
	// information to non government entities").
	if _, err := gmail.VoluntaryDisclose(TierRecords, RecipientGovernment, BasisNone, "bob"); !errors.Is(err, ErrDisclosureForbidden) {
		t.Errorf("records to government: err = %v", err)
	}
	if _, err := gmail.VoluntaryDisclose(TierRecords, RecipientPrivate, BasisNone, "bob"); err != nil {
		t.Errorf("records to private party: %v", err)
	}
	// Exceptions open the door.
	for _, basis := range []Basis{BasisUserConsent, BasisEmergency, BasisProtectRights} {
		if _, err := gmail.VoluntaryDisclose(TierContent, RecipientGovernment, basis, "bob"); err != nil {
			t.Errorf("content with basis %d: %v", int(basis), err)
		}
	}
}

func TestVoluntaryDisclosureNonPublicProvider(t *testing.T) {
	// "Providers not available 'to the public' may freely disclose both
	// contents and non-content records."
	uni := newUniversity(t)
	if _, err := uni.Deliver("x@y", "alice", "s", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := uni.VoluntaryDisclose(TierContent, RecipientGovernment, BasisNone, "alice"); err != nil {
		t.Errorf("non-public provider content disclosure: %v", err)
	}
}

func TestSubscriberByIP(t *testing.T) {
	gmail := newGmail(t)
	s, err := gmail.SubscriberByIP(legal.ProcessSubpoena, "10.0.0.7", pNow)
	if err != nil {
		t.Fatalf("SubscriberByIP: %v", err)
	}
	if s.Account != "bob" || s.Street != "7 Elm St" {
		t.Errorf("subscriber = %+v", s)
	}
	// Open-ended lease matches any later time.
	if _, err := gmail.SubscriberByIP(legal.ProcessSubpoena, "10.0.0.9", pNow.Add(100*24*time.Hour)); err != nil {
		t.Errorf("open lease: %v", err)
	}
	// Outside the lease window.
	if _, err := gmail.SubscriberByIP(legal.ProcessSubpoena, "10.0.0.7", pNow.Add(100*24*time.Hour)); !errors.Is(err, ErrNoLease) {
		t.Errorf("expired lease err = %v", err)
	}
	// Without process.
	if _, err := gmail.SubscriberByIP(legal.ProcessNone, "10.0.0.7", pNow); !errors.Is(err, ErrInsufficientProcess) {
		t.Errorf("no process err = %v", err)
	}
}

func TestLookupErrors(t *testing.T) {
	gmail := newGmail(t)
	if _, err := gmail.Deliver("x", "ghost", "s", nil); !errors.Is(err, ErrUnknownAccount) {
		t.Errorf("deliver unknown err = %v", err)
	}
	if err := gmail.Open("bob", "nope"); !errors.Is(err, ErrUnknownMessage) {
		t.Errorf("open unknown err = %v", err)
	}
	if _, err := gmail.Message("ghost", "m"); !errors.Is(err, ErrUnknownAccount) {
		t.Errorf("message unknown account err = %v", err)
	}
}

func TestDisclosureCopies(t *testing.T) {
	gmail := newGmail(t)
	id, err := gmail.Deliver("x@y", "bob", "s", []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := gmail.Compel(legal.ProcessSearchWarrant, TierContent, "bob")
	if err != nil {
		t.Fatal(err)
	}
	d.Messages[0].Body[0] = 'X'
	m, _ := gmail.Message("bob", id)
	if string(m.Body) != "body" {
		t.Error("disclosure must not alias provider storage")
	}
	d2, err := gmail.Compel(legal.ProcessSubpoena, TierBasicSubscriber, "bob")
	if err != nil {
		t.Fatal(err)
	}
	d2.Subscriber.Leases[0].IP = "tampered"
	s, _ := gmail.SubscriberByIP(legal.ProcessSubpoena, "10.0.0.7", pNow)
	if s.Account != "bob" {
		t.Error("disclosure must not alias subscriber leases")
	}
}

func TestTierStrings(t *testing.T) {
	for tier := TierBasicSubscriber; tier <= TierContent; tier++ {
		if tier.String() == "" {
			t.Errorf("tier %d empty string", int(tier))
		}
		if !tier.RequiredProcess().Valid() {
			t.Errorf("tier %d invalid required process", int(tier))
		}
	}
	if Tier(9).String() != "Tier(9)" {
		t.Errorf("placeholder = %q", Tier(9).String())
	}
	if Tier(9).RequiredProcess() != legal.ProcessSearchWarrant {
		t.Error("unknown tier must default to the strictest stored-data process")
	}
	if MessageState(9).String() != "MessageState(9)" {
		t.Errorf("placeholder = %q", MessageState(9).String())
	}
}

func TestPreservationSurvivesDeletion(t *testing.T) {
	gmail := newGmail(t)
	id, err := gmail.Deliver("x@y", "bob", "incriminating", []byte("evidence body"))
	if err != nil {
		t.Fatal(err)
	}
	// § 2703(f) request lands before the user deletes.
	if err := gmail.Preserve("bob", 0); err != nil {
		t.Fatal(err)
	}
	if err := gmail.Delete("bob", id); err != nil {
		t.Fatal(err)
	}
	// Without preservation the deleted message would be gone (see
	// TestCompelPayloads); with it, the warrant still produces it.
	d, err := gmail.Compel(legal.ProcessSearchWarrant, TierContent, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Messages) != 1 || string(d.Messages[0].Body) != "evidence body" {
		t.Errorf("preserved disclosure = %+v", d.Messages)
	}
}

func TestPreservationExpires(t *testing.T) {
	gmail := newGmail(t)
	id, err := gmail.Deliver("x@y", "bob", "s", []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	// Tiny retention: the fixed clock advances one minute per call, so
	// a 30-second window lapses before Compel runs.
	if err := gmail.Preserve("bob", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := gmail.Delete("bob", id); err != nil {
		t.Fatal(err)
	}
	d, err := gmail.Compel(legal.ProcessSearchWarrant, TierContent, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Messages) != 0 {
		t.Errorf("expired preservation still disclosed: %+v", d.Messages)
	}
}

func TestPreservationNoDuplicates(t *testing.T) {
	gmail := newGmail(t)
	if _, err := gmail.Deliver("x@y", "bob", "s", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := gmail.Preserve("bob", 0); err != nil {
		t.Fatal(err)
	}
	d, err := gmail.Compel(legal.ProcessSearchWarrant, TierContent, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Messages) != 1 {
		t.Errorf("live + preserved message double-counted: %d", len(d.Messages))
	}
}

func TestPreserveUnknownAccount(t *testing.T) {
	gmail := newGmail(t)
	if err := gmail.Preserve("ghost", 0); !errors.Is(err, ErrUnknownAccount) {
		t.Errorf("err = %v, want ErrUnknownAccount", err)
	}
}
