// Package disk is the storage-forensics substrate for Table 1 scenes
// 18-20: block images with verified forensic duplication, a small inode
// filesystem whose deletions leave recoverable residue, signature carving
// for deleted content, and hash-set search over entire drives (the
// examination United States v. Crist holds to be a Fourth Amendment
// search).
package disk

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
)

// BlockSize is the image block size in bytes.
const BlockSize = 512

// Image errors.
var (
	// ErrBadBlock: block index out of range.
	ErrBadBlock = errors.New("disk: block index out of range")
	// ErrBadSize: invalid image geometry.
	ErrBadSize = errors.New("disk: invalid image size")
	// ErrVerifyFailed: a forensic copy failed hash verification.
	ErrVerifyFailed = errors.New("disk: image verification failed")
)

// Image is a block-addressable disk image.
type Image struct {
	data   []byte
	blocks int
}

// NewImage allocates a zeroed image of the given block count.
func NewImage(blocks int) (*Image, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("%w: %d blocks", ErrBadSize, blocks)
	}
	return &Image{data: make([]byte, blocks*BlockSize), blocks: blocks}, nil
}

// Blocks returns the image's block count.
func (im *Image) Blocks() int { return im.blocks }

// Size returns the image's byte length.
func (im *Image) Size() int { return len(im.data) }

// ReadBlock copies block i into a fresh slice.
func (im *Image) ReadBlock(i int) ([]byte, error) {
	if i < 0 || i >= im.blocks {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadBlock, i, im.blocks)
	}
	out := make([]byte, BlockSize)
	copy(out, im.data[i*BlockSize:])
	return out, nil
}

// WriteBlock stores b (at most BlockSize bytes) into block i, zero-padding
// the remainder.
func (im *Image) WriteBlock(i int, b []byte) error {
	if i < 0 || i >= im.blocks {
		return fmt.Errorf("%w: %d of %d", ErrBadBlock, i, im.blocks)
	}
	if len(b) > BlockSize {
		return fmt.Errorf("%w: %d bytes into one block", ErrBadSize, len(b))
	}
	off := i * BlockSize
	copy(im.data[off:off+BlockSize], make([]byte, BlockSize))
	copy(im.data[off:], b)
	return nil
}

// Raw returns a copy of the entire image — the bitstream a carver scans.
func (im *Image) Raw() []byte {
	return append([]byte(nil), im.data...)
}

// Hash returns the hex SHA-256 of the full image.
func (im *Image) Hash() string {
	sum := sha256.Sum256(im.data)
	return hex.EncodeToString(sum[:])
}

// Duplicate produces a bit-for-bit forensic copy and verifies it by hash,
// returning the copy and the shared hash — the paper's "image the target
// hard drive and derive an image copy" step, with the verification a
// custody record needs.
func (im *Image) Duplicate() (*Image, string, error) {
	cp := &Image{data: append([]byte(nil), im.data...), blocks: im.blocks}
	h1, h2 := im.Hash(), cp.Hash()
	if h1 != h2 {
		return nil, "", ErrVerifyFailed
	}
	return cp, h1, nil
}
