package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Filesystem geometry. Block 0 is the superblock, block 1 the allocation
// bitmap, blocks 2..2+inodeBlocks-1 the inode table, and the rest data.
const (
	fsMagic        = 0x4C474654 // "LGFT"
	inodeSize      = 64
	inodesPerBlock = BlockSize / inodeSize
	inodeBlocks    = 8 // 64 inodes
	// MaxInodes is the filesystem's file capacity.
	MaxInodes = inodesPerBlock * inodeBlocks
	// maxName bounds file names.
	maxName = 31
	// directPtrs is the number of direct block pointers per inode.
	directPtrs = 12
	// MaxFileSize is the largest storable file.
	MaxFileSize = directPtrs * BlockSize

	superBlock  = 0
	bitmapBlock = 1
	inodeStart  = 2
	dataStart   = inodeStart + inodeBlocks
)

// Filesystem errors.
var (
	// ErrNotFormatted: the image does not carry this filesystem.
	ErrNotFormatted = errors.New("disk: image not formatted")
	// ErrFileExists: create collides with a live file.
	ErrFileExists = errors.New("disk: file exists")
	// ErrFileNotFound: no live file with that name.
	ErrFileNotFound = errors.New("disk: file not found")
	// ErrNoSpace: out of inodes or data blocks.
	ErrNoSpace = errors.New("disk: no space")
	// ErrNameTooLong: file name exceeds the limit.
	ErrNameTooLong = errors.New("disk: name too long")
	// ErrFileTooLarge: content exceeds MaxFileSize.
	ErrFileTooLarge = errors.New("disk: file too large")
)

// inode is the on-disk file record. Deleted files keep their name, size,
// and pointers (only the live flag drops) until the inode is reused —
// the residue deleted-file recovery depends on.
type inode struct {
	live    bool
	deleted bool
	name    string
	size    int
	ptrs    [directPtrs]uint16
}

func (in inode) marshal() []byte {
	b := make([]byte, inodeSize)
	if in.live {
		b[0] = 1
	}
	if in.deleted {
		b[1] = 1
	}
	b[2] = byte(len(in.name))
	copy(b[3:3+maxName], in.name)
	binary.BigEndian.PutUint32(b[35:39], uint32(in.size))
	for i, p := range in.ptrs {
		binary.BigEndian.PutUint16(b[39+2*i:], p)
	}
	return b
}

func unmarshalInode(b []byte) inode {
	var in inode
	in.live = b[0] == 1
	in.deleted = b[1] == 1
	n := int(b[2])
	if n > maxName {
		n = maxName
	}
	in.name = string(b[3 : 3+n])
	in.size = int(binary.BigEndian.Uint32(b[35:39]))
	for i := range in.ptrs {
		in.ptrs[i] = binary.BigEndian.Uint16(b[39+2*i:])
	}
	return in
}

// FS is a minimal flat filesystem over an Image.
type FS struct {
	im *Image
}

// Format initializes the filesystem on an image (at least dataStart+1
// blocks) and returns a handle.
func Format(im *Image) (*FS, error) {
	if im.Blocks() <= dataStart {
		return nil, fmt.Errorf("%w: need > %d blocks", ErrBadSize, dataStart)
	}
	sb := make([]byte, BlockSize)
	binary.BigEndian.PutUint32(sb[0:4], fsMagic)
	binary.BigEndian.PutUint32(sb[4:8], uint32(im.Blocks()))
	if err := im.WriteBlock(superBlock, sb); err != nil {
		return nil, err
	}
	if err := im.WriteBlock(bitmapBlock, nil); err != nil {
		return nil, err
	}
	for i := 0; i < inodeBlocks; i++ {
		if err := im.WriteBlock(inodeStart+i, nil); err != nil {
			return nil, err
		}
	}
	return &FS{im: im}, nil
}

// Mount opens an already formatted image.
func Mount(im *Image) (*FS, error) {
	sb, err := im.ReadBlock(superBlock)
	if err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(sb[0:4]) != fsMagic {
		return nil, ErrNotFormatted
	}
	return &FS{im: im}, nil
}

// Image returns the underlying image.
func (fs *FS) Image() *Image { return fs.im }

// FileInfo describes a live or recoverable file.
type FileInfo struct {
	// Name is the file name.
	Name string
	// Size is the content length.
	Size int
	// Deleted marks a recoverable deleted file.
	Deleted bool
}

func (fs *FS) readInode(i int) (inode, error) {
	blk, err := fs.im.ReadBlock(inodeStart + i/inodesPerBlock)
	if err != nil {
		return inode{}, err
	}
	off := (i % inodesPerBlock) * inodeSize
	return unmarshalInode(blk[off : off+inodeSize]), nil
}

func (fs *FS) writeInode(i int, in inode) error {
	blkIdx := inodeStart + i/inodesPerBlock
	blk, err := fs.im.ReadBlock(blkIdx)
	if err != nil {
		return err
	}
	off := (i % inodesPerBlock) * inodeSize
	copy(blk[off:off+inodeSize], in.marshal())
	return fs.im.WriteBlock(blkIdx, blk)
}

// bitmap helpers: bit set means the data block is allocated.
func (fs *FS) bitmap() ([]byte, error) { return fs.im.ReadBlock(bitmapBlock) }

func (fs *FS) setBit(bm []byte, block int, used bool) {
	idx := block - dataStart
	if used {
		bm[idx/8] |= 1 << (idx % 8)
	} else {
		bm[idx/8] &^= 1 << (idx % 8)
	}
}

func (fs *FS) bitSet(bm []byte, block int) bool {
	idx := block - dataStart
	return bm[idx/8]&(1<<(idx%8)) != 0
}

// allocBlocks finds n free data blocks.
func (fs *FS) allocBlocks(bm []byte, n int) ([]uint16, error) {
	var out []uint16
	for b := dataStart; b < fs.im.Blocks() && len(out) < n; b++ {
		if !fs.bitSet(bm, b) {
			out = append(out, uint16(b))
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("%w: need %d data blocks", ErrNoSpace, n)
	}
	return out, nil
}

// Create writes a new file. Names must be unique among live files.
func (fs *FS) Create(name string, content []byte) error {
	if len(name) > maxName || name == "" {
		return fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	if len(content) > MaxFileSize {
		return fmt.Errorf("%w: %d bytes", ErrFileTooLarge, len(content))
	}
	// Prefer never-used inodes over deleted ones so deletion residue
	// survives as long as possible, mirroring real filesystems' lazy
	// reuse.
	virgin, recycled := -1, -1
	for i := 0; i < MaxInodes; i++ {
		in, err := fs.readInode(i)
		if err != nil {
			return err
		}
		if in.live && in.name == name {
			return fmt.Errorf("%w: %q", ErrFileExists, name)
		}
		if in.live {
			continue
		}
		if in.deleted {
			if recycled == -1 {
				recycled = i
			}
		} else if virgin == -1 {
			virgin = i
		}
	}
	free := virgin
	if free == -1 {
		free = recycled
	}
	if free == -1 {
		return fmt.Errorf("%w: out of inodes", ErrNoSpace)
	}
	bm, err := fs.bitmap()
	if err != nil {
		return err
	}
	nBlocks := (len(content) + BlockSize - 1) / BlockSize
	ptrs, err := fs.allocBlocks(bm, nBlocks)
	if err != nil {
		return err
	}
	in := inode{live: true, name: name, size: len(content)}
	for i, p := range ptrs {
		chunk := content[i*BlockSize:]
		if len(chunk) > BlockSize {
			chunk = chunk[:BlockSize]
		}
		if err := fs.im.WriteBlock(int(p), chunk); err != nil {
			return err
		}
		fs.setBit(bm, int(p), true)
		in.ptrs[i] = p
	}
	if err := fs.im.WriteBlock(bitmapBlock, bm); err != nil {
		return err
	}
	return fs.writeInode(free, in)
}

// Read returns a live file's content.
func (fs *FS) Read(name string) ([]byte, error) {
	for i := 0; i < MaxInodes; i++ {
		in, err := fs.readInode(i)
		if err != nil {
			return nil, err
		}
		if in.live && in.name == name {
			return fs.contents(in)
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrFileNotFound, name)
}

func (fs *FS) contents(in inode) ([]byte, error) {
	out := make([]byte, 0, in.size)
	remaining := in.size
	for i := 0; remaining > 0 && i < directPtrs; i++ {
		blk, err := fs.im.ReadBlock(int(in.ptrs[i]))
		if err != nil {
			return nil, err
		}
		n := remaining
		if n > BlockSize {
			n = BlockSize
		}
		out = append(out, blk[:n]...)
		remaining -= n
	}
	return out, nil
}

// Delete removes a live file: the inode flips to deleted and the data
// blocks return to the free pool, but neither the inode record nor the
// data is zeroed — the file remains recoverable until overwritten, per
// the paper's staleness note ("It is also good for investigators to
// recover the deleted files").
func (fs *FS) Delete(name string) error {
	for i := 0; i < MaxInodes; i++ {
		in, err := fs.readInode(i)
		if err != nil {
			return err
		}
		if !in.live || in.name != name {
			continue
		}
		bm, err := fs.bitmap()
		if err != nil {
			return err
		}
		nBlocks := (in.size + BlockSize - 1) / BlockSize
		for j := 0; j < nBlocks; j++ {
			fs.setBit(bm, int(in.ptrs[j]), false)
		}
		if err := fs.im.WriteBlock(bitmapBlock, bm); err != nil {
			return err
		}
		in.live = false
		in.deleted = true
		return fs.writeInode(i, in)
	}
	return fmt.Errorf("%w: %q", ErrFileNotFound, name)
}

// List returns live files, and deleted-but-recoverable files when
// includeDeleted is set.
func (fs *FS) List(includeDeleted bool) ([]FileInfo, error) {
	var out []FileInfo
	for i := 0; i < MaxInodes; i++ {
		in, err := fs.readInode(i)
		if err != nil {
			return nil, err
		}
		switch {
		case in.live:
			out = append(out, FileInfo{Name: in.name, Size: in.size})
		case in.deleted && includeDeleted:
			out = append(out, FileInfo{Name: in.name, Size: in.size, Deleted: true})
		}
	}
	return out, nil
}

// Recover returns a deleted file's residual content, valid while its
// blocks remain unallocated.
func (fs *FS) Recover(name string) ([]byte, error) {
	for i := 0; i < MaxInodes; i++ {
		in, err := fs.readInode(i)
		if err != nil {
			return nil, err
		}
		if in.deleted && !in.live && in.name == name {
			return fs.contents(in)
		}
	}
	return nil, fmt.Errorf("%w: %q (deleted)", ErrFileNotFound, name)
}

// FreeBlocks reports how many data blocks remain unallocated.
func (fs *FS) FreeBlocks() (int, error) {
	bm, err := fs.bitmap()
	if err != nil {
		return 0, err
	}
	n := 0
	for b := dataStart; b < fs.im.Blocks(); b++ {
		if !fs.bitSet(bm, b) {
			n++
		}
	}
	return n, nil
}
