package disk

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
)

// Signature is a file-format magic-number pair used for carving.
type Signature struct {
	// Name labels the format.
	Name string
	// Header and Footer delimit an instance in the bitstream; a nil
	// footer carves a fixed MaxLen run.
	Header, Footer []byte
	// MaxLen bounds a carved object.
	MaxLen int
}

// StandardSignatures returns carving signatures for the formats the
// paper's scenarios involve.
func StandardSignatures() []Signature {
	return []Signature{
		{Name: "jpeg", Header: []byte{0xFF, 0xD8, 0xFF}, Footer: []byte{0xFF, 0xD9}, MaxLen: 1 << 20},
		{Name: "png", Header: []byte{0x89, 'P', 'N', 'G'}, Footer: []byte("IEND"), MaxLen: 1 << 20},
		{Name: "pdf", Header: []byte("%PDF"), Footer: []byte("%%EOF"), MaxLen: 1 << 20},
	}
}

// Carved is one object recovered by signature scanning.
type Carved struct {
	// Format is the signature name.
	Format string
	// Offset is the byte offset in the image.
	Offset int
	// Data is the carved object, header through footer inclusive.
	Data []byte
}

// Carve scans the raw image for signature instances — the technique that
// recovers deleted content with no filesystem help. Overlapping instances
// of one format are carved left to right without rescanning inside a hit.
func Carve(im *Image, sigs []Signature) []Carved {
	raw := im.Raw()
	var out []Carved
	for _, sig := range sigs {
		pos := 0
		for {
			i := bytes.Index(raw[pos:], sig.Header)
			if i < 0 {
				break
			}
			start := pos + i
			end := -1
			if sig.Footer != nil {
				limit := start + sig.MaxLen
				if limit > len(raw) {
					limit = len(raw)
				}
				if j := bytes.Index(raw[start+len(sig.Header):limit], sig.Footer); j >= 0 {
					end = start + len(sig.Header) + j + len(sig.Footer)
				}
			}
			if end < 0 {
				pos = start + len(sig.Header)
				continue
			}
			out = append(out, Carved{
				Format: sig.Name,
				Offset: start,
				Data:   append([]byte(nil), raw[start:end]...),
			})
			pos = end
		}
	}
	return out
}

// HashSet is a known-file hash database (hex SHA-256 → label), as used in
// contraband hash searches.
type HashSet map[string]string

// Add registers content under a label and returns its hex hash.
func (h HashSet) Add(label string, content []byte) string {
	sum := sha256.Sum256(content)
	k := hex.EncodeToString(sum[:])
	h[k] = label
	return k
}

// HashHit is one known-file match found on a drive.
type HashHit struct {
	// Label is the hash-set entry matched.
	Label string
	// File is the matching file's name; empty for carved-only hits.
	File string
	// Deleted marks a hit in deleted-but-recoverable content.
	Deleted bool
}

// HashSearch runs the scene-18 examination: hash every live file, every
// recoverable deleted file, and every carved object on the filesystem,
// returning matches against the known set. Crist holds this to be a
// search requiring a warrant; the caller is responsible for holding one
// (the investigation package enforces it).
func HashSearch(fs *FS, known HashSet) ([]HashHit, error) {
	var hits []HashHit
	seen := make(map[string]bool)
	files, err := fs.List(true)
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		var content []byte
		if f.Deleted {
			content, err = fs.Recover(f.Name)
		} else {
			content, err = fs.Read(f.Name)
		}
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256(content)
		k := hex.EncodeToString(sum[:])
		if label, ok := known[k]; ok {
			hits = append(hits, HashHit{Label: label, File: f.Name, Deleted: f.Deleted})
			seen[k] = true
		}
	}
	for _, c := range Carve(fs.Image(), StandardSignatures()) {
		sum := sha256.Sum256(c.Data)
		k := hex.EncodeToString(sum[:])
		if label, ok := known[k]; ok && !seen[k] {
			hits = append(hits, HashHit{Label: label, Deleted: true})
			seen[k] = true
		}
	}
	return hits, nil
}

// KeywordSearch returns the names of live files containing the keyword —
// the scoped, warrant-respecting examination of § III-A-2-a, which looks
// only at responsive categories instead of hashing the entire drive.
func KeywordSearch(fs *FS, keyword []byte) ([]string, error) {
	files, err := fs.List(false)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, f := range files {
		content, err := fs.Read(f.Name)
		if err != nil {
			return nil, err
		}
		if bytes.Contains(content, keyword) {
			out = append(out, f.Name)
		}
	}
	return out, nil
}
