package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newFS(t *testing.T, blocks int) *FS {
	t.Helper()
	im, err := NewImage(blocks)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(im)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestImageBasics(t *testing.T) {
	im, err := NewImage(16)
	if err != nil {
		t.Fatal(err)
	}
	if im.Blocks() != 16 || im.Size() != 16*BlockSize {
		t.Errorf("geometry: %d blocks, %d bytes", im.Blocks(), im.Size())
	}
	if err := im.WriteBlock(3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	b, err := im.ReadBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:5]) != "hello" {
		t.Errorf("block content: %q", b[:5])
	}
	if _, err := im.ReadBlock(16); !errors.Is(err, ErrBadBlock) {
		t.Errorf("oob read err = %v", err)
	}
	if err := im.WriteBlock(-1, nil); !errors.Is(err, ErrBadBlock) {
		t.Errorf("oob write err = %v", err)
	}
	if err := im.WriteBlock(0, make([]byte, BlockSize+1)); !errors.Is(err, ErrBadSize) {
		t.Errorf("oversize write err = %v", err)
	}
	if _, err := NewImage(0); !errors.Is(err, ErrBadSize) {
		t.Errorf("zero image err = %v", err)
	}
}

func TestImageWriteBlockZeroPads(t *testing.T) {
	im, err := NewImage(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.WriteBlock(1, bytes.Repeat([]byte{0xAA}, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := im.WriteBlock(1, []byte("short")); err != nil {
		t.Fatal(err)
	}
	b, _ := im.ReadBlock(1)
	if b[5] != 0 || b[BlockSize-1] != 0 {
		t.Error("short write must zero the rest of the block")
	}
}

func TestImageDuplicate(t *testing.T) {
	im, err := NewImage(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.WriteBlock(2, []byte("evidence")); err != nil {
		t.Fatal(err)
	}
	cp, hash, err := im.Duplicate()
	if err != nil {
		t.Fatal(err)
	}
	if hash != im.Hash() || hash != cp.Hash() {
		t.Error("duplicate hash mismatch")
	}
	// Post-copy mutation must not affect the duplicate.
	if err := im.WriteBlock(2, []byte("tampered")); err != nil {
		t.Fatal(err)
	}
	b, _ := cp.ReadBlock(2)
	if string(b[:8]) != "evidence" {
		t.Error("duplicate must be independent of the original")
	}
	if im.Hash() == cp.Hash() {
		t.Error("hashes must diverge after mutation")
	}
}

func TestFSCreateReadRoundTrip(t *testing.T) {
	fs := newFS(t, 128)
	content := bytes.Repeat([]byte("abc123"), 300) // spans multiple blocks
	if err := fs.Create("evidence.bin", content); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("evidence.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("round trip mismatch")
	}
	files, err := fs.List(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Name != "evidence.bin" || files[0].Size != len(content) {
		t.Errorf("List = %+v", files)
	}
}

func TestFSCreateErrors(t *testing.T) {
	fs := newFS(t, 64)
	if err := fs.Create("", nil); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("empty name err = %v", err)
	}
	if err := fs.Create(string(bytes.Repeat([]byte("x"), 40)), nil); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("long name err = %v", err)
	}
	if err := fs.Create("big", make([]byte, MaxFileSize+1)); !errors.Is(err, ErrFileTooLarge) {
		t.Errorf("oversize err = %v", err)
	}
	if err := fs.Create("dup", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("dup", []byte("y")); !errors.Is(err, ErrFileExists) {
		t.Errorf("duplicate err = %v", err)
	}
	if _, err := fs.Read("missing"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("missing read err = %v", err)
	}
	if err := fs.Delete("missing"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("missing delete err = %v", err)
	}
}

func TestFSNoSpace(t *testing.T) {
	// Image with very few data blocks.
	fs := newFS(t, dataStart+2)
	if err := fs.Create("a", make([]byte, 2*BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("b", []byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Errorf("no-space err = %v", err)
	}
}

func TestFSDeleteAndRecover(t *testing.T) {
	fs := newFS(t, 128)
	secret := []byte("deleted contraband content")
	if err := fs.Create("secret.txt", secret); err != nil {
		t.Fatal(err)
	}
	free0, err := fs.FreeBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("secret.txt"); err != nil {
		t.Fatal(err)
	}
	free1, err := fs.FreeBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if free1 != free0+1 {
		t.Errorf("free blocks %d -> %d, want +1", free0, free1)
	}
	// Gone from the live listing, present with includeDeleted.
	live, _ := fs.List(false)
	if len(live) != 0 {
		t.Errorf("live files after delete: %v", live)
	}
	all, _ := fs.List(true)
	if len(all) != 1 || !all[0].Deleted {
		t.Errorf("deleted listing: %+v", all)
	}
	if _, err := fs.Read("secret.txt"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("read deleted err = %v", err)
	}
	// Residue recoverable.
	got, err := fs.Recover("secret.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Error("recovered content mismatch")
	}
	if _, err := fs.Recover("never-existed"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("recover missing err = %v", err)
	}
}

func TestFSDeletedBlocksReused(t *testing.T) {
	fs := newFS(t, 64)
	if err := fs.Create("old", bytes.Repeat([]byte("O"), BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("old"); err != nil {
		t.Fatal(err)
	}
	// Fill the freed block with new content.
	if err := fs.Create("new", bytes.Repeat([]byte("N"), BlockSize)); err != nil {
		t.Fatal(err)
	}
	// The residue is overwritten — recovery now returns the new data,
	// reflecting real deleted-file forensics.
	got, err := fs.Recover("old")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'N' {
		t.Error("expected residue to be overwritten by reuse")
	}
}

func TestMount(t *testing.T) {
	im, err := NewImage(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(im); !errors.Is(err, ErrNotFormatted) {
		t.Errorf("unformatted mount err = %v", err)
	}
	if _, err := Format(im); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(im)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.Create("f", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	fs3, err := Mount(im)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs3.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "persisted" {
		t.Error("data must survive remount")
	}
	small, err := NewImage(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Format(small); !errors.Is(err, ErrBadSize) {
		t.Errorf("tiny format err = %v", err)
	}
}

func TestCarve(t *testing.T) {
	fs := newFS(t, 256)
	jpeg := append(append([]byte{0xFF, 0xD8, 0xFF, 0xE0}, bytes.Repeat([]byte{0x42}, 100)...), 0xFF, 0xD9)
	pdf := append([]byte("%PDF-1.4 content here "), []byte("%%EOF")...)
	if err := fs.Create("photo.jpg", jpeg); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("doc.pdf", pdf); err != nil {
		t.Fatal(err)
	}
	// Delete the JPEG: carving must still find it in the residue.
	if err := fs.Delete("photo.jpg"); err != nil {
		t.Fatal(err)
	}
	carved := Carve(fs.Image(), StandardSignatures())
	byFormat := map[string]int{}
	for _, c := range carved {
		byFormat[c.Format]++
	}
	if byFormat["jpeg"] != 1 {
		t.Errorf("carved %d jpegs, want 1", byFormat["jpeg"])
	}
	if byFormat["pdf"] != 1 {
		t.Errorf("carved %d pdfs, want 1", byFormat["pdf"])
	}
	for _, c := range carved {
		if c.Format == "jpeg" && !bytes.Equal(c.Data, jpeg) {
			t.Error("carved jpeg differs from original")
		}
	}
}

func TestCarveHeaderWithoutFooter(t *testing.T) {
	im, err := NewImage(8)
	if err != nil {
		t.Fatal(err)
	}
	// A JPEG header with no terminator must not be carved.
	if err := im.WriteBlock(2, []byte{0xFF, 0xD8, 0xFF, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	carved := Carve(im, StandardSignatures())
	if len(carved) != 0 {
		t.Errorf("carved %d objects from headerless junk", len(carved))
	}
}

func TestHashSearch(t *testing.T) {
	fs := newFS(t, 256)
	contraband := append(append([]byte{0xFF, 0xD8, 0xFF}, bytes.Repeat([]byte{7}, 64)...), 0xFF, 0xD9)
	innocuous := []byte("family vacation notes")
	if err := fs.Create("a.jpg", contraband); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("notes.txt", innocuous); err != nil {
		t.Fatal(err)
	}
	known := HashSet{}
	known.Add("known-contraband-001", contraband)
	hits, err := HashSearch(fs, known)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Label != "known-contraband-001" || hits[0].File != "a.jpg" {
		t.Errorf("hits = %+v", hits)
	}
	// After deletion the hash search still finds it via recovery.
	if err := fs.Delete("a.jpg"); err != nil {
		t.Fatal(err)
	}
	hits, err = HashSearch(fs, known)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || !hits[0].Deleted {
		t.Errorf("post-delete hits = %+v", hits)
	}
}

func TestKeywordSearch(t *testing.T) {
	fs := newFS(t, 128)
	if err := fs.Create("howto.html", []byte("how to build a methamphetamine laboratory")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("recipe.txt", []byte("chocolate cake instructions")); err != nil {
		t.Fatal(err)
	}
	got, err := KeywordSearch(fs, []byte("methamphetamine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "howto.html" {
		t.Errorf("keyword hits = %v", got)
	}
	none, err := KeywordSearch(fs, []byte("absent"))
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("unexpected hits = %v", none)
	}
}

// Property: create/read round trips for arbitrary contents and the free
// block count is consistent with the bytes stored.
func TestFSRoundTripProperty(t *testing.T) {
	f := func(content []byte) bool {
		if len(content) > MaxFileSize {
			content = content[:MaxFileSize]
		}
		fs := newFS(&testing.T{}, 128)
		if err := fs.Create("f", content); err != nil {
			return false
		}
		got, err := fs.Read("f")
		if err != nil {
			return false
		}
		if !bytes.Equal(got, content) {
			return false
		}
		free, err := fs.FreeBlocks()
		if err != nil {
			return false
		}
		used := (len(content) + BlockSize - 1) / BlockSize
		return free == (128-dataStart)-used
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Errorf("round-trip property violated: %v", err)
	}
}

func TestInodeMarshalRoundTrip(t *testing.T) {
	in := inode{live: true, deleted: false, name: "some-file.dat", size: 4097}
	in.ptrs[0], in.ptrs[1], in.ptrs[11] = 10, 11, 21
	got := unmarshalInode(in.marshal())
	if got.live != in.live || got.deleted != in.deleted || got.name != in.name || got.size != in.size {
		t.Errorf("round trip = %+v, want %+v", got, in)
	}
	if got.ptrs != in.ptrs {
		t.Errorf("ptrs = %v, want %v", got.ptrs, in.ptrs)
	}
}

func TestCarveFragmentationLimitation(t *testing.T) {
	// Interleave two files block by block so the JPEG's body is split
	// by foreign data: header and footer both exist, but the carved
	// object spans the interloper — the classic fragmentation
	// limitation of signature carving, preserved (not hidden) by this
	// implementation.
	fs := newFS(t, 64)
	jpegHead := append([]byte{0xFF, 0xD8, 0xFF, 0xE0}, bytes.Repeat([]byte{0x01}, BlockSize-4)...)
	if err := fs.Create("part1", jpegHead); err != nil { // occupies one block
		t.Fatal(err)
	}
	if err := fs.Create("interloper", bytes.Repeat([]byte{0x77}, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("part2", append(bytes.Repeat([]byte{0x02}, 60), 0xFF, 0xD9)); err != nil {
		t.Fatal(err)
	}
	carved := Carve(fs.Image(), StandardSignatures())
	if len(carved) != 1 {
		t.Fatalf("carved %d objects", len(carved))
	}
	if !bytes.Contains(carved[0].Data, []byte{0x77, 0x77}) {
		t.Error("fragmented carve should include the interloper's bytes — documenting the limitation")
	}
}
