package capture

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
)

// TestMonitorEscalation walks the paper's scope-creep scene: a header
// sniffer (addressing, pen/trap regime) escalated to a full wiretap
// (content, Wiretap Act) mid-capture. The monitor must re-rule the
// delta, flag the change, and agree byte-for-byte with a full
// evaluation of the rebuilt action.
func TestMonitorEscalation(t *testing.T) {
	d, err := New(HeaderSniffer, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	engine := legal.NewEngine()
	m, err := NewMonitor(engine, d.Action())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Ruling().Regime; got != legal.RegimePenTrap {
		t.Fatalf("base regime = %v, want %v", got, legal.RegimePenTrap)
	}

	delta, err := d.Escalate(FullWiretap)
	if err != nil {
		t.Fatal(err)
	}
	r, changed, err := m.Apply(5*time.Second, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("escalation to full wiretap must change the ruling")
	}
	if r.Regime != legal.RegimeWiretap {
		t.Errorf("escalated regime = %v, want %v", r.Regime, legal.RegimeWiretap)
	}

	// The monitor's incremental ruling must equal a full evaluation of
	// the device's current action on a fresh engine.
	want, err := legal.NewEngine().Evaluate(d.Action())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Ruling(); !reflect.DeepEqual(got, want) {
		t.Errorf("monitor ruling diverged from full evaluation:\n got %+v\nwant %+v", got, want)
	}

	trans := m.Transitions()
	if len(trans) != 1 {
		t.Fatalf("transitions = %d, want 1", len(trans))
	}
	tr := trans[0]
	if tr.Event != 1 || tr.At != 5*time.Second {
		t.Errorf("transition event/at = %d/%v, want 1/5s", tr.Event, tr.At)
	}
	if tr.FromRegime != legal.RegimePenTrap || tr.ToRegime != legal.RegimeWiretap {
		t.Errorf("transition regimes = %v -> %v", tr.FromRegime, tr.ToRegime)
	}
	if !strings.Contains(tr.Delta, "data:") {
		t.Errorf("transition delta %q should record the data-class change", tr.Delta)
	}
}

// TestMonitorConsentRevocationAndExigencyLapse drives the two other
// event sources. Revoking consent on a party-consent wiretap and
// letting an emergency authorization lapse must both surface as
// transitions; the device's stored consent must keep its recorded
// value untouched (the delta adopts pointers).
func TestMonitorConsentRevocationAndExigencyLapse(t *testing.T) {
	consent := &legal.Consent{Scope: legal.ConsentCommunicationParty}
	p := govISPPlacement()
	p.Consent = consent
	d, err := New(FullWiretap, p, legal.ProcessNone)
	if err != nil {
		t.Fatal(err)
	}
	engine := legal.NewEngine()
	m, err := NewMonitor(engine, d.Action())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Ruling().Required; got != legal.ProcessNone {
		t.Fatalf("party-consent wiretap requires %v, want none", got)
	}

	delta, err := d.RevokeConsent()
	if err != nil {
		t.Fatal(err)
	}
	r, changed, err := m.Apply(time.Second, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || r.Required == legal.ProcessNone {
		t.Errorf("revocation must raise the required process; changed=%v required=%v", changed, r.Required)
	}
	if consent.Revoked {
		t.Error("RevokeConsent mutated the originally recorded consent in place")
	}
	if d.placement.Consent == nil || !d.placement.Consent.Revoked {
		t.Error("device placement should now carry the revoked consent copy")
	}

	// Exigency: a pen register installed under the § 3125 emergency
	// provision whose authorization then lapses.
	pe := govISPPlacement()
	pe.Exigency = &legal.Exigency{Kind: legal.ExigencyEmergencyPenTrap, Approved: true}
	de, err := New(PenRegister, pe, legal.ProcessNone)
	if err != nil {
		t.Fatal(err)
	}
	me, err := NewMonitor(engine, de.Action())
	if err != nil {
		t.Fatal(err)
	}
	lapse, err := de.LapseExigency()
	if err != nil {
		t.Fatal(err)
	}
	r2, changed2, err := me.Apply(2*time.Second, lapse)
	if err != nil {
		t.Fatal(err)
	}
	if !changed2 || r2.Required == legal.ProcessNone {
		t.Errorf("lapsed exigency must raise the required process; changed=%v required=%v", changed2, r2.Required)
	}
	if de.placement.Exigency != nil {
		t.Error("LapseExigency should clear the placement exigency")
	}

	// Second lapse / revocation with nothing to act on must error.
	if _, err := de.LapseExigency(); err == nil {
		t.Error("LapseExigency on a device without exigency should fail")
	}
	if _, err := de.RevokeConsent(); err == nil {
		t.Error("RevokeConsent on a device without consent should fail")
	}
}

// TestMonitorQuietEventsAndTranscript checks the streaming contract:
// events that do not move the ruling report changed=false and record no
// transition, but every event still lands in the audit transcript, and
// an invalid delta leaves the monitor state untouched.
func TestMonitorQuietEventsAndTranscript(t *testing.T) {
	d, err := New(PenRegister, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	engine := legal.NewEngine()
	m, err := NewMonitor(engine, d.Action())
	if err != nil {
		t.Fatal(err)
	}
	before := m.Ruling()

	// A pen register re-kinded to a trap-and-trace stays in the same
	// regime with the same required process: quiet event.
	delta, err := d.Escalate(TrapTrace)
	if err != nil {
		t.Fatal(err)
	}
	_, changed, err := m.Apply(time.Second, delta)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("pen register -> trap and trace should not change the ruling")
	}
	if n := len(m.Transitions()); n != 0 {
		t.Errorf("quiet event recorded %d transitions", n)
	}
	if m.Events() != 1 {
		t.Errorf("events = %d, want 1", m.Events())
	}

	// An invalid delta must error and leave the ruling in force.
	var bad legal.ActionDelta
	bad.SetActor(d.Action().Actor, legal.Actor(99))
	if _, _, err := m.Apply(2*time.Second, bad); err == nil {
		t.Fatal("invalid delta must error")
	}
	if m.Events() != 1 {
		t.Errorf("failed event counted: events = %d, want 1", m.Events())
	}
	if got := m.Ruling(); got.Required != before.Required || got.Regime != before.Regime {
		t.Error("failed event mutated the monitor's ruling")
	}

	ts := m.Transcript()
	lines := strings.Split(strings.TrimRight(ts, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("transcript lines = %d, want 2 (base + one event):\n%s", len(lines), ts)
	}
	if !strings.HasPrefix(lines[0], "base ") {
		t.Errorf("transcript line 0 = %q, want base line", lines[0])
	}
	if !strings.HasPrefix(lines[1], "t=1000000000 delta{") {
		t.Errorf("transcript line 1 = %q, want timestamped delta line", lines[1])
	}
	if !strings.Contains(lines[1], " -> court order (") {
		t.Errorf("transcript line 1 = %q, should carry the status suffix", lines[1])
	}
}

// TestMonitorApplyAllBatchSeals proves the buffered-burst path is
// observationally identical to per-event Apply: same final ruling, same
// transitions, and a byte-identical ledger root — AppendBatch sealing
// must not be distinguishable from sequential sealing.
func TestMonitorApplyAllBatchSeals(t *testing.T) {
	d, err := New(PenRegister, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	base := d.Action()
	var burst []TimedDelta
	for i, kind := range []DeviceKind{TrapTrace, HeaderSniffer, FullWiretap} {
		delta, err := d.Escalate(kind)
		if err != nil {
			t.Fatal(err)
		}
		burst = append(burst, TimedDelta{At: time.Duration(i+1) * time.Second, Delta: delta})
	}

	engine := legal.NewEngine()
	ledSeq, ledBatch := ledger.New(), ledger.New()
	seq, err := NewMonitor(engine, base, WithAuditLedger(ledSeq, "op", "dev-1"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range burst {
		if _, _, err := seq.Apply(ev.At, ev.Delta); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := NewMonitor(engine, base, WithAuditLedger(ledBatch, "op", "dev-1"))
	if err != nil {
		t.Fatal(err)
	}
	applied, err := batch.ApplyAll(burst)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(burst) {
		t.Fatalf("applied = %d, want %d", applied, len(burst))
	}

	if got, want := batch.Ruling(), seq.Ruling(); !reflect.DeepEqual(got, want) {
		t.Errorf("burst ruling diverged:\n got %+v\nwant %+v", got, want)
	}
	if got, want := batch.Transitions(), seq.Transitions(); !reflect.DeepEqual(got, want) {
		t.Errorf("burst transitions diverged:\n got %+v\nwant %+v", got, want)
	}
	if got, want := batch.Transcript(), seq.Transcript(); got != want {
		t.Errorf("burst transcript diverged:\n got %q\nwant %q", got, want)
	}
	if err := ledBatch.Verify(); err != nil {
		t.Fatalf("batch-sealed ledger verify: %v", err)
	}
	if got, want := ledBatch.Root(), ledSeq.Root(); got != want {
		t.Errorf("batch-sealed root %x != sequentially sealed root %x", got, want)
	}

	// A burst that fails mid-way seals the applied prefix and reports
	// the count, so the audit record matches the monitor's state.
	var bad legal.ActionDelta
	bad.SetActor(batch.Ruling().Action.Actor, legal.Actor(99))
	good, err := d.Escalate(PenRegister)
	if err != nil {
		t.Fatal(err)
	}
	before := ledBatch.Len()
	applied, err = batch.ApplyAll([]TimedDelta{
		{At: 10 * time.Second, Delta: good},
		{At: 11 * time.Second, Delta: bad},
	})
	if err == nil || applied != 1 {
		t.Fatalf("partial burst: applied=%d err=%v, want 1 applied with error", applied, err)
	}
	if got := ledBatch.Len(); got != before+1 {
		t.Errorf("partial burst sealed %d records, want 1", got-before)
	}
}
