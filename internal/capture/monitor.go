package capture

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
)

// CaptureEvent classifies a monitor-produced ledger record; it rides in
// ledger.Record.Code on KindCapture records.
type CaptureEvent uint32

// Capture ledger events.
const (
	// CaptureBase seals the monitor's base ruling at start.
	CaptureBase CaptureEvent = iota + 1
	// CaptureEscalation is a scope change (re-kinded device, data-class
	// creep, any non-consent, non-exigency mutation).
	CaptureEscalation
	// CaptureRevocation is a consent revoked mid-capture.
	CaptureRevocation
	// CaptureLapse is an exigency expiring mid-capture.
	CaptureLapse
)

var captureEventNames = map[CaptureEvent]string{
	CaptureBase:       "base",
	CaptureEscalation: "escalation",
	CaptureRevocation: "revocation",
	CaptureLapse:      "lapse",
}

// String returns the human-readable event name.
func (e CaptureEvent) String() string {
	if s, ok := captureEventNames[e]; ok {
		return s
	}
	return fmt.Sprintf("CaptureEvent(%d)", uint32(e))
}

// classifyDelta maps a mutation event to its capture ledger event.
// Revocation and lapse are recognized by their signature field changes;
// everything else that mutates the action is an escalation.
func classifyDelta(d *legal.ActionDelta) CaptureEvent {
	for i := range d.Fields {
		fd := &d.Fields[i]
		switch fd.Field {
		case legal.FieldConsent:
			if fd.NewConsent != nil && fd.NewConsent.Revoked &&
				(fd.OldConsent == nil || !fd.OldConsent.Revoked) {
				return CaptureRevocation
			}
		case legal.FieldExigency:
			if fd.OldExigency != nil && fd.NewExigency == nil {
				return CaptureLapse
			}
		}
	}
	return CaptureEscalation
}

// Monitor follows the legal status of one evolving acquisition: a base
// action ruled once, then a stream of ActionDeltas — scope escalations,
// consent revocations, lapsing exigencies — each re-ruled incrementally
// through Engine.EvaluateDelta. It reports only the events that changed
// the answer (required process or governing regime), which is the
// streaming-rulings shape ROADMAP item 5 calls for: most events leave
// the ruling untouched and resolve in the engine's O(changed fields)
// short-circuit.
//
// A Monitor is safe for concurrent use: one mutex serializes Apply
// against the read accessors (Ruling, Events, Transitions, Transcript),
// so an auditor can stream the transcript while the capture loop is
// still emitting deltas. Events remain totally ordered by whichever
// goroutine wins the lock; drive Apply from one goroutine when event
// order must follow device order.
type Monitor struct {
	mu     sync.Mutex
	engine *legal.Engine
	ruling legal.Ruling
	events int
	trans  []Transition
	// log is the append-only audit transcript. Lines are built in place
	// with AppendEncoding/AppendFingerprint, so steady-state events cost
	// no per-event string allocations.
	log []byte
	// led, when set, receives one sealed KindCapture record per event:
	// the base ruling, then each escalation / revocation / lapse.
	led      *ledger.Ledger
	operator string
	device   string
}

// MonitorOption configures NewMonitor.
type MonitorOption func(*Monitor)

// WithAuditLedger seals every monitor event into led as a KindCapture
// record: operator becomes the record's Actor, device its Subject, and
// the transcript line its Note. With a ledger attached each event pays
// one note-string allocation — the price of a sealed record.
func WithAuditLedger(led *ledger.Ledger, operator, device string) MonitorOption {
	return func(m *Monitor) {
		m.led = led
		m.operator = operator
		m.device = device
	}
}

// Transition records one event that changed the ruling.
type Transition struct {
	// At is the virtual time of the event.
	At time.Duration
	// Event is the 1-based event ordinal.
	Event int
	// Delta is the canonical encoding of the mutation.
	Delta string
	// From/To are the required processes before and after.
	From, To legal.Process
	// FromRegime/ToRegime are the governing regimes before and after.
	FromRegime, ToRegime legal.Regime
}

// NewMonitor rules the base action and starts the event stream.
func NewMonitor(engine *legal.Engine, base legal.Action, opts ...MonitorOption) (*Monitor, error) {
	r, err := engine.Evaluate(base)
	if err != nil {
		return nil, fmt.Errorf("capture: monitor base action: %w", err)
	}
	m := &Monitor{engine: engine, ruling: r}
	for _, opt := range opts {
		opt(m)
	}
	m.log = append(m.log, "base "...)
	m.log = r.Action.AppendFingerprint(m.log)
	m.log = m.appendStatus(m.log, &r)
	m.seal(0, CaptureBase, 0)
	return m, nil
}

// draft builds the sealed-record form of the transcript line starting
// at lineStart. The note is copied out of m.log immediately, so later
// transcript growth cannot alias it.
func (m *Monitor) draft(lineStart int, ev CaptureEvent, at time.Duration) ledger.Draft {
	return ledger.Draft{
		At:      int64(at),
		Kind:    ledger.KindCapture,
		Code:    uint32(ev),
		Actor:   m.operator,
		Subject: m.device,
		Note:    string(m.log[lineStart : len(m.log)-1]), // strip trailing newline
	}
}

// seal appends the transcript line starting at lineStart to the audit
// ledger, if one is attached.
func (m *Monitor) seal(lineStart int, ev CaptureEvent, at time.Duration) {
	if m.led == nil {
		return
	}
	m.led.Append(m.draft(lineStart, ev, at))
}

// applyLocked re-rules the acquisition after one mutation event,
// appends its transcript line, and advances the monitor state. It
// returns the line bounds and event class so the caller chooses how to
// seal — one record (Apply) or one batch (ApplyAll). Callers hold m.mu.
func (m *Monitor) applyLocked(at time.Duration, d legal.ActionDelta) (lineStart int, ev CaptureEvent, changed bool, err error) {
	next, err := m.engine.EvaluateDelta(&m.ruling, d)
	if err != nil {
		return 0, 0, false, fmt.Errorf("capture: monitor event %d: %w", m.events+1, err)
	}
	m.events++
	changed = next.Required != m.ruling.Required || next.Regime != m.ruling.Regime
	lineStart = len(m.log)
	m.log = append(m.log, "t="...)
	m.log = strconv.AppendInt(m.log, int64(at), 10)
	m.log = append(m.log, ' ')
	m.log = d.AppendEncoding(m.log)
	m.log = append(m.log, ' ')
	m.log = next.Action.AppendFingerprint(m.log)
	m.log = m.appendStatus(m.log, &next)
	if changed {
		m.trans = append(m.trans, Transition{
			At:         at,
			Event:      m.events,
			Delta:      d.Encoding(),
			From:       m.ruling.Required,
			To:         next.Required,
			FromRegime: m.ruling.Regime,
			ToRegime:   next.Regime,
		})
	}
	m.ruling = next
	return lineStart, classifyDelta(&d), changed, nil
}

// Apply re-rules the acquisition after one mutation event, returning
// the ruling now in force and whether the event changed the required
// process or governing regime. Errors (a delta that makes the action
// invalid) leave the monitor's state untouched.
func (m *Monitor) Apply(at time.Duration, d legal.ActionDelta) (legal.Ruling, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	lineStart, ev, changed, err := m.applyLocked(at, d)
	if err != nil {
		return legal.Ruling{}, false, err
	}
	m.seal(lineStart, ev, at)
	return m.ruling, changed, nil
}

// TimedDelta is one scheduled mutation in a buffered event burst.
type TimedDelta struct {
	At    time.Duration
	Delta legal.ActionDelta
}

// ApplyAll applies a buffered burst of events in order under a single
// lock hold and seals their audit records as one ledger batch, paying
// the ledger's Merkle maintenance once per burst instead of once per
// event. It stops at the first invalid delta and returns how many
// events were applied with that error; the applied prefix is still
// sealed, so the audit record matches the state the monitor reached.
func (m *Monitor) ApplyAll(events []TimedDelta) (applied int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var drafts []ledger.Draft
	if m.led != nil {
		drafts = make([]ledger.Draft, 0, len(events))
	}
	for i := range events {
		lineStart, ev, _, aerr := m.applyLocked(events[i].At, events[i].Delta)
		if aerr != nil {
			err = aerr
			break
		}
		if m.led != nil {
			drafts = append(drafts, m.draft(lineStart, ev, events[i].At))
		}
		applied++
	}
	if len(drafts) > 0 {
		m.led.AppendBatch(drafts)
	}
	return applied, err
}

// appendStatus appends " -> <process> (<regime>)\n" to the transcript.
func (m *Monitor) appendStatus(buf []byte, r *legal.Ruling) []byte {
	buf = append(buf, " -> "...)
	buf = append(buf, r.Required.String()...)
	buf = append(buf, " ("...)
	buf = append(buf, r.Regime.String()...)
	return append(buf, ')', '\n')
}

// Ruling returns the determination currently in force.
func (m *Monitor) Ruling() legal.Ruling {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ruling
}

// Events reports how many mutation events the monitor has applied.
func (m *Monitor) Events() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events
}

// Transitions returns a copy of the ruling-changing events, in order.
func (m *Monitor) Transitions() []Transition {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Transition, len(m.trans))
	copy(out, m.trans)
	return out
}

// Transcript returns the full audit transcript: one line per event
// (fingerprint, delta encoding, resulting status), whether or not the
// ruling changed.
func (m *Monitor) Transcript() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return string(m.log)
}
