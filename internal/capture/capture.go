// Package capture provides the acquisition devices of paper § II-B as
// legally gated taps on the simulated network: pen registers (outgoing
// addressing), trap-and-trace devices (incoming addressing), header
// sniffers (both directions, headers only), rate meters (packet counts per
// interval — the Section IV-B collection primitive), and full-content
// wiretaps.
//
// Every device derives the legal.Action its operation constitutes, and a
// Gate evaluates it before arming. A strict gate refuses under-authorized
// devices; a permissive gate arms them anyway and records the violation so
// downstream suppression analysis can exclude the fruits — the paper's
// motivating failure mode.
package capture

import (
	"errors"
	"fmt"
	"time"

	"lawgate/internal/legal"
	"lawgate/internal/netsim"
)

// ErrUnauthorized is returned by a strict Gate when the held process does
// not satisfy what the device's operation requires.
var ErrUnauthorized = errors.New("capture: device not authorized for its required process")

// ErrAlreadyArmed is returned when a device is armed twice.
var ErrAlreadyArmed = errors.New("capture: device already armed")

// DeviceKind identifies what a device collects.
type DeviceKind int

// Device kinds.
const (
	// PenRegister records outgoing addressing information
	// (18 U.S.C. § 3127(3)).
	PenRegister DeviceKind = iota + 1
	// TrapTrace records incoming addressing information
	// (18 U.S.C. § 3127(4)).
	TrapTrace
	// HeaderSniffer records addressing headers in both directions (the
	// WarDriving configuration).
	HeaderSniffer
	// RateMeter records only packet counts and sizes per time interval —
	// the paper's Section IV-B collection: "they do not need to collect
	// the entire packet, so they do not need a wiretap warrant".
	RateMeter
	// FullWiretap records entire packets, payload included (Title III).
	FullWiretap
)

var deviceKindNames = map[DeviceKind]string{
	PenRegister:   "pen register",
	TrapTrace:     "trap and trace",
	HeaderSniffer: "header sniffer",
	RateMeter:     "rate meter",
	FullWiretap:   "full wiretap",
}

// String returns the human-readable kind.
func (k DeviceKind) String() string {
	if s, ok := deviceKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("DeviceKind(%d)", int(k))
}

// Valid reports whether k is a defined device kind.
func (k DeviceKind) Valid() bool {
	_, ok := deviceKindNames[k]
	return ok
}

// DataClass returns the legal data class the device acquires: content for
// a full wiretap, addressing for everything else.
func (k DeviceKind) DataClass() legal.DataClass {
	if k == FullWiretap {
		return legal.DataContent
	}
	return legal.DataAddressing
}

// Record is one captured observation. Addressing-class devices leave
// Payload nil.
type Record struct {
	// At is the virtual capture time.
	At time.Duration
	// Dir is the packet direction at the tapped node.
	Dir netsim.Direction
	// Header is the addressing information.
	Header netsim.Header
	// Payload is the content; nil unless captured by a full wiretap.
	Payload []byte
	// Encrypted echoes the packet's encryption flag.
	Encrypted bool
}

// Placement describes where and on whose behalf a device operates; it
// determines the legality of the capture.
type Placement struct {
	// Node is the tapped network node.
	Node netsim.NodeID
	// Actor is who operates the device.
	Actor legal.Actor
	// Source classifies the tapped infrastructure.
	Source legal.Source
	// Consent, if any, accompanies the operation.
	Consent *legal.Consent
	// Exigency, if any, accompanies the operation.
	Exigency *legal.Exigency
	// InterceptsThirdParty marks relay-operator style interception.
	InterceptsThirdParty bool
}

// Device is a capture instrument: a netsim.Tap whose observations are
// filtered to what its kind lawfully describes.
type Device struct {
	kind      DeviceKind
	placement Placement
	held      legal.Process
	expiry    time.Duration
	ruling    legal.Ruling
	armed     bool
	records   []Record
	// Expired counts observations dropped after the authorization
	// lapsed.
	Expired int
}

var _ netsim.Tap = (*Device)(nil)

// New constructs an unarmed device. held is the legal process the operator
// possesses.
func New(kind DeviceKind, placement Placement, held legal.Process) (*Device, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("capture: invalid device kind %d", int(kind))
	}
	if !held.Valid() {
		return nil, fmt.Errorf("capture: invalid held process %d", int(held))
	}
	return &Device{kind: kind, placement: placement, held: held}, nil
}

// Kind returns the device kind.
func (d *Device) Kind() DeviceKind { return d.kind }

// SetExpiry bounds the device's authorization in virtual time: a search
// warrant or surveillance order "may expire and revoke after a specific
// time period" (paper § III-A-2-b). Observations at or after the expiry
// are dropped and counted in Expired. Zero means unbounded.
func (d *Device) SetExpiry(at time.Duration) { d.expiry = at }

// Held returns the process the operator holds.
func (d *Device) Held() legal.Process { return d.held }

// Action derives the legal.Action the device's operation constitutes.
func (d *Device) Action() legal.Action {
	return legal.Action{
		Name:                 fmt.Sprintf("%s@%s", d.kind, d.placement.Node),
		Actor:                d.placement.Actor,
		Timing:               legal.TimingRealTime,
		Data:                 d.kind.DataClass(),
		Source:               d.placement.Source,
		Consent:              d.placement.Consent,
		Exigency:             d.placement.Exigency,
		InterceptsThirdParty: d.placement.InterceptsThirdParty,
	}
}

// Ruling returns the engine's determination, valid after Arm.
func (d *Device) Ruling() legal.Ruling { return d.ruling }

// Escalate re-kinds the device mid-capture — the paper's scope-creep
// event, e.g. a header sniffer upgraded to full-content interception —
// and returns the ActionDelta the change carries, for a Monitor (or any
// EvaluateDelta consumer) to re-rule incrementally.
func (d *Device) Escalate(to DeviceKind) (legal.ActionDelta, error) {
	if !to.Valid() {
		return legal.ActionDelta{}, fmt.Errorf("capture: invalid device kind %d", int(to))
	}
	old := d.Action()
	d.kind = to
	next := d.Action()
	return legal.Diff(&old, &next), nil
}

// RevokeConsent marks the placement's consent revoked and returns the
// delta. The stored consent is replaced with a modified copy, never
// mutated in place: deltas adopt pointers, so the old consent must stay
// as it was recorded.
func (d *Device) RevokeConsent() (legal.ActionDelta, error) {
	if d.placement.Consent == nil {
		return legal.ActionDelta{}, errors.New("capture: no consent to revoke")
	}
	old := d.Action()
	c := *d.placement.Consent
	c.Revoked = true
	d.placement.Consent = &c
	next := d.Action()
	return legal.Diff(&old, &next), nil
}

// LapseExigency clears the placement's exigency — the emergency
// authorization expiring mid-capture — and returns the delta.
func (d *Device) LapseExigency() (legal.ActionDelta, error) {
	if d.placement.Exigency == nil {
		return legal.ActionDelta{}, errors.New("capture: no exigency to lapse")
	}
	old := d.Action()
	d.placement.Exigency = nil
	next := d.Action()
	return legal.Diff(&old, &next), nil
}

// Lawful reports whether the held process satisfies the ruling; valid
// after Arm.
func (d *Device) Lawful() bool { return d.held.Satisfies(d.ruling.Required) }

// Observe implements netsim.Tap: the device logs what its kind permits.
// Pen registers log outbound addressing; trap-and-trace devices log
// inbound addressing; header sniffers and rate meters log both; full
// wiretaps log everything including payload.
func (d *Device) Observe(dir netsim.Direction, at time.Duration, pkt *netsim.Packet) {
	if d.expiry > 0 && at >= d.expiry {
		d.Expired++
		return
	}
	switch d.kind {
	case PenRegister:
		if dir != netsim.DirOutbound {
			return
		}
	case TrapTrace:
		if dir != netsim.DirInbound {
			return
		}
	}
	rec := Record{At: at, Dir: dir, Header: pkt.Header, Encrypted: pkt.Encrypted}
	if d.kind == FullWiretap {
		rec.Payload = append([]byte(nil), pkt.Payload...)
	}
	d.records = append(d.records, rec)
}

// Acquisition summarizes how much evidence a device has obtained — the
// figure a partial or interrupted capture must report instead of
// silently discarding what it holds.
type Acquisition struct {
	// Records is the number of captured observations.
	Records int
	// Bytes totals the observed packets' sizes (headers included).
	Bytes int64
	// Expired counts observations dropped after authorization lapsed.
	Expired int
}

// String renders the summary for error messages and reports.
func (a Acquisition) String() string {
	s := fmt.Sprintf("%d records (%d bytes)", a.Records, a.Bytes)
	if a.Expired > 0 {
		s += fmt.Sprintf(", %d dropped after expiry", a.Expired)
	}
	return s
}

// Acquired summarizes the evidence obtained so far.
func (d *Device) Acquired() Acquisition {
	a := Acquisition{Records: len(d.records), Expired: d.Expired}
	for _, r := range d.records {
		a.Bytes += int64(r.Header.SizeBytes)
	}
	return a
}

// Records returns a copy of the captured observations; payloads are
// deep-copied so callers cannot mutate the device's log.
func (d *Device) Records() []Record {
	out := make([]Record, len(d.records))
	copy(out, d.records)
	for i := range out {
		if out[i].Payload != nil {
			out[i].Payload = append([]byte(nil), out[i].Payload...)
		}
	}
	return out
}

// Counts bins the device's records into packet counts per interval,
// covering [0, horizon) — the rate signal the Section IV-B detector
// correlates. Records at or past the horizon are ignored.
func (d *Device) Counts(bin time.Duration, horizon time.Duration) []int {
	if bin <= 0 || horizon <= 0 {
		return nil
	}
	n := int(horizon / bin)
	counts := make([]int, n)
	for _, r := range d.records {
		i := int(r.At / bin)
		if i >= 0 && i < n {
			counts[i]++
		}
	}
	return counts
}

// TapNetwork is the attachment surface Arm drives; both
// *netsim.Network and *netsim.ShardedNetwork satisfy it.
type TapNetwork interface {
	AttachTap(id netsim.NodeID, t netsim.Tap) error
}

// Gate authorizes devices against the legal engine before they attach to
// the network.
type Gate struct {
	engine *legal.Engine
	strict bool
}

// NewGate returns a gate. A strict gate refuses unauthorized devices; a
// permissive gate arms them and lets suppression analysis catch the
// violation later.
func NewGate(strict bool) *Gate {
	return &Gate{engine: legal.NewEngine(), strict: strict}
}

// Arm evaluates the device's action, enforces strictness, and attaches the
// device as a tap at its placement node.
func (g *Gate) Arm(net TapNetwork, d *Device) error {
	if d.armed {
		return ErrAlreadyArmed
	}
	ruling, err := g.engine.Evaluate(d.Action())
	if err != nil {
		return fmt.Errorf("capture: evaluating device action: %w", err)
	}
	d.ruling = ruling
	if g.strict && !d.held.Satisfies(ruling.Required) {
		return fmt.Errorf("%w: %s requires %s, operator holds %s",
			ErrUnauthorized, d.kind, ruling.Required, d.held)
	}
	if err := net.AttachTap(d.placement.Node, d); err != nil {
		return err
	}
	d.armed = true
	return nil
}
