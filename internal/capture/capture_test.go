package capture

import (
	"errors"
	"testing"
	"time"

	"lawgate/internal/legal"
	"lawgate/internal/netsim"
)

func ispNet(t *testing.T) *netsim.Network {
	t.Helper()
	sim := netsim.NewSimulator(1)
	n := netsim.NewNetwork(sim)
	for _, id := range []netsim.NodeID{"suspect", "isp", "server"} {
		if err := n.AddNode(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect("suspect", "isp", netsim.Link{Latency: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("isp", "server", netsim.Link{Latency: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	return n
}

func govISPPlacement() Placement {
	return Placement{
		Node:   "isp",
		Actor:  legal.ActorGovernment,
		Source: legal.SourceThirdPartyNetwork,
	}
}

func send(t *testing.T, n *netsim.Network, src, dst netsim.NodeID, payload string) {
	t.Helper()
	err := n.Send(&netsim.Packet{
		Header:  netsim.Header{Src: src, Dst: dst, Flow: "f", Proto: netsim.ProtoTCP},
		Payload: []byte(payload),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeviceKindDataClass(t *testing.T) {
	for k := PenRegister; k <= FullWiretap; k++ {
		want := legal.DataAddressing
		if k == FullWiretap {
			want = legal.DataContent
		}
		if got := k.DataClass(); got != want {
			t.Errorf("%v.DataClass() = %v, want %v", k, got, want)
		}
		if !k.Valid() {
			t.Errorf("kind %v should be valid", k)
		}
	}
	if DeviceKind(0).Valid() {
		t.Error("DeviceKind(0) should be invalid")
	}
	if DeviceKind(99).String() != "DeviceKind(99)" {
		t.Errorf("placeholder = %q", DeviceKind(99).String())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DeviceKind(0), govISPPlacement(), legal.ProcessCourtOrder); err == nil {
		t.Error("invalid kind must be rejected")
	}
	if _, err := New(PenRegister, govISPPlacement(), legal.Process(99)); err == nil {
		t.Error("invalid process must be rejected")
	}
}

func TestPenRegisterRequiresCourtOrder(t *testing.T) {
	n := ispNet(t)
	gate := NewGate(true)

	// Without process: refused.
	d, err := New(PenRegister, govISPPlacement(), legal.ProcessNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, d); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unauthorized pen register: err = %v, want ErrUnauthorized", err)
	}

	// With a court order: armed.
	d, err = New(PenRegister, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, d); err != nil {
		t.Fatalf("authorized pen register: %v", err)
	}
	if !d.Lawful() {
		t.Error("device with sufficient process must be lawful")
	}
}

func TestFullWiretapRequiresWiretapOrder(t *testing.T) {
	n := ispNet(t)
	gate := NewGate(true)
	d, err := New(FullWiretap, govISPPlacement(), legal.ProcessSearchWarrant)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, d); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("warrant is not enough for Title III: err = %v", err)
	}
	d, err = New(FullWiretap, govISPPlacement(), legal.ProcessWiretapOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, d); err != nil {
		t.Fatalf("wiretap order must arm a full wiretap: %v", err)
	}
}

func TestRateMeterNeedsOnlyPenTrapProcess(t *testing.T) {
	// The Section IV-B point: rate collection is non-content, so a court
	// order suffices where a wiretap order would be needed for payloads.
	n := ispNet(t)
	gate := NewGate(true)
	d, err := New(RateMeter, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, d); err != nil {
		t.Fatalf("court order must arm a rate meter: %v", err)
	}
	if d.Ruling().Required >= legal.ProcessSearchWarrant {
		t.Errorf("rate meter required %v; must stay below warrant tier", d.Ruling().Required)
	}
}

func TestProviderDeviceOnOwnNetworkNeedsNothing(t *testing.T) {
	n := ispNet(t)
	gate := NewGate(true)
	d, err := New(HeaderSniffer, Placement{
		Node:   "isp",
		Actor:  legal.ActorProvider,
		Source: legal.SourceOwnNetwork,
	}, legal.ProcessNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, d); err != nil {
		t.Fatalf("provider self-monitoring must arm freely: %v", err)
	}
}

func TestPenRegisterDirectionFilter(t *testing.T) {
	n := ispNet(t)
	gate := NewGate(true)
	pen, err := New(PenRegister, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	trap, err := New(TrapTrace, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, pen); err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, trap); err != nil {
		t.Fatal(err)
	}
	// One packet arriving at isp (inbound) and one relayed out
	// (outbound).
	send(t, n, "suspect", "isp", "in")
	send(t, n, "isp", "server", "out")
	n.Sim().Run()

	penRecs, trapRecs := pen.Records(), trap.Records()
	if len(penRecs) != 1 || penRecs[0].Dir != netsim.DirOutbound {
		t.Errorf("pen register records = %+v, want 1 outbound", penRecs)
	}
	if len(trapRecs) != 1 || trapRecs[0].Dir != netsim.DirInbound {
		t.Errorf("trap/trace records = %+v, want 1 inbound", trapRecs)
	}
}

func TestAddressingDevicesOmitPayload(t *testing.T) {
	n := ispNet(t)
	gate := NewGate(true)
	sniffer, err := New(HeaderSniffer, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	wiretap, err := New(FullWiretap, govISPPlacement(), legal.ProcessWiretapOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, sniffer); err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, wiretap); err != nil {
		t.Fatal(err)
	}
	send(t, n, "suspect", "isp", "secret-contents")
	n.Sim().Run()

	if recs := sniffer.Records(); len(recs) != 1 || recs[0].Payload != nil {
		t.Errorf("header sniffer must not retain payload: %+v", recs)
	}
	recs := wiretap.Records()
	if len(recs) != 1 || string(recs[0].Payload) != "secret-contents" {
		t.Errorf("full wiretap must retain payload: %+v", recs)
	}
	if recs[0].Header.Src != "suspect" {
		t.Errorf("header src = %v", recs[0].Header.Src)
	}
}

func TestPermissiveGateArmsButMarksUnlawful(t *testing.T) {
	n := ispNet(t)
	gate := NewGate(false)
	d, err := New(FullWiretap, govISPPlacement(), legal.ProcessNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, d); err != nil {
		t.Fatalf("permissive gate must arm: %v", err)
	}
	if d.Lawful() {
		t.Error("unauthorized device must be marked unlawful")
	}
	send(t, n, "suspect", "isp", "x")
	n.Sim().Run()
	if len(d.Records()) != 1 {
		t.Error("permissive device must still capture")
	}
}

func TestArmTwiceFails(t *testing.T) {
	n := ispNet(t)
	gate := NewGate(true)
	d, err := New(HeaderSniffer, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, d); err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, d); !errors.Is(err, ErrAlreadyArmed) {
		t.Errorf("double arm err = %v, want ErrAlreadyArmed", err)
	}
}

func TestCounts(t *testing.T) {
	n := ispNet(t)
	gate := NewGate(true)
	d, err := New(RateMeter, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, d); err != nil {
		t.Fatal(err)
	}
	// 3 packets in bin 0 (t<10ms), 1 packet in bin 2 (t in [20,30)).
	for i := 0; i < 3; i++ {
		send(t, n, "suspect", "isp", "x") // arrive at 1ms
	}
	if err := n.Sim().Schedule(24*time.Millisecond, func() {
		_ = n.Send(&netsim.Packet{Header: netsim.Header{Src: "suspect", Dst: "isp", Flow: "f"}})
	}); err != nil {
		t.Fatal(err)
	}
	n.Sim().Run()
	counts := d.Counts(10*time.Millisecond, 40*time.Millisecond)
	if len(counts) != 4 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[0] != 3 || counts[1] != 0 || counts[2] != 1 || counts[3] != 0 {
		t.Errorf("counts = %v, want [3 0 1 0]", counts)
	}
	if got := d.Counts(0, time.Second); got != nil {
		t.Errorf("Counts with zero bin = %v, want nil", got)
	}
}

func TestRecordsAreCopies(t *testing.T) {
	n := ispNet(t)
	gate := NewGate(true)
	d, err := New(FullWiretap, govISPPlacement(), legal.ProcessWiretapOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, d); err != nil {
		t.Fatal(err)
	}
	send(t, n, "suspect", "isp", "abc")
	n.Sim().Run()
	recs := d.Records()
	recs[0].Payload[0] = 'X'
	if string(d.Records()[0].Payload) != "abc" {
		t.Error("Records must not expose internal payload slices")
	}
}

func TestDeviceExpiry(t *testing.T) {
	n := ispNet(t)
	gate := NewGate(true)
	d, err := New(HeaderSniffer, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	d.SetExpiry(10 * time.Millisecond)
	if err := gate.Arm(n, d); err != nil {
		t.Fatal(err)
	}
	send(t, n, "suspect", "isp", "early") // arrives at 1ms
	if err := n.Sim().Schedule(20*time.Millisecond, func() {
		_ = n.Send(&netsim.Packet{Header: netsim.Header{Src: "suspect", Dst: "isp", Flow: "f"}})
	}); err != nil {
		t.Fatal(err)
	}
	n.Sim().Run()
	if got := len(d.Records()); got != 1 {
		t.Errorf("records = %d, want 1 (post-expiry dropped)", got)
	}
	if d.Expired != 1 {
		t.Errorf("Expired = %d, want 1", d.Expired)
	}
}

func TestWirelessSnifferScenes(t *testing.T) {
	// Table 1 scenes 3-6 through the capture layer: headers off the air
	// arm freely; payload capture off the air needs a wiretap order.
	sim := netsim.NewSimulator(9)
	n := netsim.NewNetwork(sim)
	for _, id := range []netsim.NodeID{"house-ap", "laptop"} {
		if err := n.AddNode(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect("house-ap", "laptop", netsim.Link{}); err != nil {
		t.Fatal(err)
	}
	gate := NewGate(true)
	wardriving := Placement{
		Node:   "house-ap",
		Actor:  legal.ActorGovernment,
		Source: legal.SourceWirelessBroadcast,
	}
	headers, err := New(HeaderSniffer, wardriving, legal.ProcessNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, headers); err != nil {
		t.Errorf("wireless header sniffing must arm without process (scenes 3, 5): %v", err)
	}
	payload, err := New(FullWiretap, wardriving, legal.ProcessNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, payload); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("wireless payload capture without process must be refused (scenes 4, 6): %v", err)
	}
	payload2, err := New(FullWiretap, wardriving, legal.ProcessWiretapOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := gate.Arm(n, payload2); err != nil {
		t.Errorf("wireless payload capture with a wiretap order must arm: %v", err)
	}
}

func TestAcquiredSummarizesEvidence(t *testing.T) {
	n := ispNet(t)
	d, err := New(HeaderSniffer, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewGate(true).Arm(n, d); err != nil {
		t.Fatal(err)
	}
	if a := d.Acquired(); a.Records != 0 || a.Bytes != 0 {
		t.Errorf("fresh device acquired %+v", a)
	}
	send(t, n, "suspect", "isp", "hello")
	send(t, n, "isp", "server", "world!!")
	n.Sim().Run()
	a := d.Acquired()
	wantBytes := int64((len("hello") + 40) + (len("world!!") + 40))
	if a.Records != 2 || a.Bytes != wantBytes {
		t.Errorf("acquired %+v, want 2 records / %d bytes", a, wantBytes)
	}
	if got := a.String(); got != "2 records (92 bytes)" {
		t.Errorf("String() = %q", got)
	}
}

func TestAcquiredCountsExpiry(t *testing.T) {
	n := ispNet(t)
	d, err := New(HeaderSniffer, govISPPlacement(), legal.ProcessCourtOrder)
	if err != nil {
		t.Fatal(err)
	}
	d.SetExpiry(time.Nanosecond)
	if err := NewGate(true).Arm(n, d); err != nil {
		t.Fatal(err)
	}
	send(t, n, "suspect", "isp", "late")
	n.Sim().Run()
	a := d.Acquired()
	if a.Records != 0 || a.Expired != 1 {
		t.Errorf("expired capture acquired %+v", a)
	}
	if got := a.String(); got != "0 records (0 bytes), 1 dropped after expiry" {
		t.Errorf("String() = %q", got)
	}
}
