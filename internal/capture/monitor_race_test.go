package capture

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
)

// TestMonitorConcurrentApplyAndRead races a delta-emitting capture loop
// against auditors streaming the transcript, transitions, and current
// ruling. Run under -race (ci.sh runs the whole module with the race
// detector) this flushes out any unguarded monitor state; the final
// transcript and event count must also reflect every applied delta.
func TestMonitorConcurrentApplyAndRead(t *testing.T) {
	base := legal.Action{
		Name:   "race-capture",
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingRealTime,
		Data:   legal.DataAddressing,
		Source: legal.SourceThirdPartyNetwork,
	}
	escalated := base
	escalated.Data = legal.DataContent

	led := ledger.New()
	engine := legal.NewEngine(legal.WithRulingCache(0))
	m, err := NewMonitor(engine, base, WithAuditLedger(led, "op-race", "dev-race"))
	if err != nil {
		t.Fatal(err)
	}

	const events = 400
	var wg sync.WaitGroup
	done := make(chan struct{})

	// One capture loop emits the device's delta stream in order:
	// escalation to content, then back down, alternating — half the
	// events change the ruling, half resolve in the delta short-circuit.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		cur, next := base, escalated
		for i := 0; i < events; i++ {
			d := legal.Diff(&cur, &next)
			if _, _, err := m.Apply(time.Duration(i)*time.Millisecond, d); err != nil {
				t.Errorf("apply %d: %v", i, err)
				return
			}
			cur, next = next, cur
		}
	}()

	// Three auditors hammer the read accessors until the stream ends.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = m.Transcript()
				_ = m.Transitions()
				_ = m.Ruling()
				_ = m.Events()
			}
		}()
	}
	wg.Wait()

	if got := m.Events(); got != events {
		t.Fatalf("events = %d, want %d", got, events)
	}
	// Base line plus one line per event, each newline-terminated.
	if got := strings.Count(m.Transcript(), "\n"); got != events+1 {
		t.Fatalf("transcript lines = %d, want %d", got, events+1)
	}
	if got := len(m.Transitions()); got != events {
		t.Fatalf("transitions = %d, want %d (every alternation changes the ruling)", got, events)
	}
	if got := led.Len(); got != events+1 {
		t.Fatalf("ledger records = %d, want %d", got, events+1)
	}
	if err := led.Verify(); err != nil {
		t.Fatalf("ledger verify after concurrent capture: %v", err)
	}
	// The final ruling must equal a fresh full evaluation of the final
	// action (events is even, so the stream ends back at base).
	want, err := legal.NewEngine().Evaluate(base)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Ruling()
	if got.Required != want.Required || got.Regime != want.Regime {
		t.Fatalf("final ruling %v/%v, want %v/%v", got.Required, got.Regime, want.Required, want.Regime)
	}
}
