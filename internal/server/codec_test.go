package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"lawgate/internal/legal"
	"lawgate/internal/report"
)

func codecRulings() []legal.Ruling {
	return []legal.Ruling{
		{},
		{
			Action:   legal.Action{Name: "seize stored email <inbox> & \"drafts\""},
			Required: legal.ProcessSearchWarrant,
			Regime:   legal.RegimeSCA,
			Rationale: []string{
				"stored content at a public provider",
				"SCA \u00a7 2703(a) requires a warrant",
			},
			Citations: []legal.Citation{{ID: "sca", Title: "18 U.S.C. \u00a7 2703"}},
		},
		{
			Action:     legal.Action{Name: "consent search"},
			Required:   legal.ProcessNone,
			Regime:     legal.RegimeFourthAmendment,
			Exceptions: []legal.ExceptionKind{1, 2},
			Rationale:  []string{},
			Citations:  []legal.Citation{},
		},
	}
}

// The hand-built evaluate envelope must be byte-identical to
// json.Marshal of the EvaluateResponse struct — the contract that
// keeps clients and the conformance probe oblivious to the codec.
func TestAppendEvaluateResponseMatchesStdlib(t *testing.T) {
	for i, r := range codecRulings() {
		want, err := json.Marshal(EvaluateResponse{
			Tenant:   "tenant-a",
			Revision: 7,
			Ruling:   report.FromRuling(r),
		})
		if err != nil {
			t.Fatal(err)
		}
		got := appendEvaluateResponse(nil, "tenant-a", 7, &r)
		if !bytes.Equal(got, want) {
			t.Errorf("ruling %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestAppendBatchResponseMatchesStdlib(t *testing.T) {
	rulings := codecRulings()
	cases := []struct {
		name   string
		slots  int
		ruls   []legal.Ruling
		failed map[int]bool
		errs   []BatchError
	}{
		{name: "empty", slots: 0, ruls: nil},
		{name: "all ok", slots: 3, ruls: rulings},
		{
			name: "one failed", slots: 3, ruls: rulings,
			failed: map[int]bool{1: true},
			errs:   []BatchError{{Index: 1, Error: "action 1: invalid <action>"}},
		},
		{
			name: "unindexed error", slots: 2, ruls: rulings[:2],
			failed: map[int]bool{0: true, 1: true},
			errs: []BatchError{
				{Index: 0, Error: "action 0: bad"},
				{Index: 1, Error: "action 1: bad"},
				{Index: -1, Error: "context canceled"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Build the reply the pre-codec handler built, then require
			// the direct encoder to reproduce its exact bytes.
			resp := BatchResponse{Tenant: "t", Revision: 3,
				Rulings: make([]*report.RulingView, tc.slots), Errors: tc.errs}
			for i := 0; i < tc.slots && i < len(tc.ruls); i++ {
				if tc.failed[i] {
					continue
				}
				v := report.FromRuling(tc.ruls[i])
				resp.Rulings[i] = &v
			}
			want, err := json.Marshal(resp)
			if err != nil {
				t.Fatal(err)
			}
			got := appendBatchResponse(nil, "t", 3, tc.slots, tc.ruls, tc.failed, tc.errs)
			if !bytes.Equal(got, want) {
				t.Errorf("\n got %s\nwant %s", got, want)
			}
		})
	}
}

// End-to-end byte identity: the served /v1/evaluate body, decoded with
// encoding/json and re-marshaled, must reproduce the raw response
// exactly — the same assertion the lawgated probe makes on a live
// server.
func TestServedEvaluateBytesRoundTripStdlib(t *testing.T) {
	srv, err := New(WithTenants("default"))
	if err != nil {
		t.Fatal(err)
	}
	bodies := []string{
		`{"Name":"wiretap call contents","Actor":1,"Timing":1,"Data":1,"Source":3}`,
		`{"Name":"subpoena basic subscriber info","Actor":1,"Timing":2,"Data":3,"Source":4}`,
		`{"Name":"consent <search>","Actor":1,"Timing":2,"Data":1,"Source":4,"Consent":{"Scope":1}}`,
	}
	for _, body := range bodies {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/evaluate", strings.NewReader(body))
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		raw := rec.Body.Bytes()
		var resp EvaluateResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("response not valid JSON: %v", err)
		}
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		if !bytes.Equal(raw, want) {
			t.Errorf("served bytes diverge from stdlib rendering:\n got %s\nwant %s", raw, want)
		}
	}

	// Batch endpoint, including a failed slot.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/evaluate/batch",
		strings.NewReader(`[{"Name":"ok","Actor":1,"Timing":2,"Data":3,"Source":4},{"Name":"bad","Actor":99}]`))
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	raw := rec.Body.Bytes()
	var bresp BatchResponse
	if err := json.Unmarshal(raw, &bresp); err != nil {
		t.Fatalf("batch response not valid JSON: %v", err)
	}
	want, err := json.Marshal(bresp)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(raw, want) {
		t.Errorf("batch bytes diverge:\n got %s\nwant %s", raw, want)
	}
}

// The audit spool must flush on every external ledger observation:
// checkpoints, tenant views, and direct Ledger() access all see every
// request served so far.
func TestAuditSpoolFlushesOnReads(t *testing.T) {
	srv, err := New(WithTenants("default"))
	if err != nil {
		t.Fatal(err)
	}
	tn := srv.Registry().Get("default")
	base := tn.Ledger().Len()
	const served = 5 // below spoolFlushThreshold: only reads can flush
	for i := 0; i < served; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/evaluate",
			strings.NewReader(`{"Name":"wiretap","Actor":1,"Timing":1,"Data":1,"Source":3}`))
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	if got := tn.Ledger().Len(); got != base+served {
		t.Fatalf("Ledger() sees %d records, want %d", got, base+served)
	}
	if err := tn.Ledger().Verify(); err != nil {
		t.Fatalf("ledger verify after spool flush: %v", err)
	}

	// The checkpoint endpoint must commit to spooled requests too.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/evaluate",
		strings.NewReader(`{"Name":"wiretap","Actor":1,"Timing":1,"Data":1,"Source":3}`))
	srv.Handler().ServeHTTP(rec, req)
	crec := httptest.NewRecorder()
	creq := httptest.NewRequest("GET", "/v1/ledger/checkpoint", nil)
	srv.Handler().ServeHTTP(crec, creq)
	var cp CheckpointResponse
	if err := json.Unmarshal(crec.Body.Bytes(), &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Size != uint64(base+served+1) {
		t.Fatalf("checkpoint size %d, want %d", cp.Size, base+served+1)
	}
}

// The spool drains inline once it reaches spoolFlushThreshold, so an
// unread ledger cannot buffer unboundedly.
func TestAuditSpoolThresholdFlush(t *testing.T) {
	srv, err := New(WithTenants("default"))
	if err != nil {
		t.Fatal(err)
	}
	tn := srv.Registry().Get("default")
	base := tn.led.Len() // direct: do not trigger a read flush
	for i := 0; i < spoolFlushThreshold; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/evaluate",
			strings.NewReader(`{"Name":"wiretap","Actor":1,"Timing":1,"Data":1,"Source":3}`))
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
	}
	if got := tn.led.Len(); got != base+spoolFlushThreshold {
		t.Fatalf("after %d requests ledger has %d records, want %d (threshold flush missing)",
			spoolFlushThreshold, got, base+spoolFlushThreshold)
	}
}
