package server

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
	"lawgate/internal/report"
	"lawgate/internal/wire"
)

// EvaluateResponse is the /v1/evaluate reply.
type EvaluateResponse struct {
	Tenant   string            `json:"tenant"`
	Revision uint64            `json:"revision"`
	Ruling   report.RulingView `json:"ruling"`
}

// BatchResponse is the /v1/evaluate/batch reply: one ruling slot per
// input action, with failed slots null and their errors listed.
type BatchResponse struct {
	Tenant   string               `json:"tenant"`
	Revision uint64               `json:"revision"`
	Rulings  []*report.RulingView `json:"rulings"`
	Errors   []BatchError         `json:"errors,omitempty"`
}

// BatchError names one failed batch slot.
type BatchError struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// AdviceItem is one advisor redesign.
type AdviceItem struct {
	Required    string `json:"required"`
	Regime      string `json:"regime"`
	Explanation string `json:"explanation"`
	Rule        string `json:"rule"`
}

// AdviseResponse is the /v1/advise reply.
type AdviseResponse struct {
	Tenant   string            `json:"tenant"`
	Revision uint64            `json:"revision"`
	Ruling   report.RulingView `json:"ruling"`
	Advice   []AdviceItem      `json:"advice"`
}

// CheckpointResponse is the /v1/ledger/checkpoint reply. Consistency is
// present when the request carried ?since=M: the proof that this
// checkpoint extends the size-M checkpoint the tenant anchored earlier.
type CheckpointResponse struct {
	Tenant      string           `json:"tenant"`
	Size        uint64           `json:"size"`
	Root        string           `json:"root"`
	Head        string           `json:"head"`
	Consistency *ConsistencyView `json:"consistency,omitempty"`
}

// ConsistencyView is a hex-rendered ledger.ConsistencyProof.
type ConsistencyView struct {
	OldSize uint64   `json:"oldSize"`
	NewSize uint64   `json:"newSize"`
	Path    []string `json:"path"`
}

// TenantView is the /v1/tenants/{id} (and rules-install) reply.
type TenantView struct {
	Tenant      string             `json:"tenant"`
	Revision    uint64             `json:"revision"`
	Container   string             `json:"container"`
	RuleCount   int                `json:"ruleCount"`
	InstalledAt time.Time          `json:"installedAt"`
	LedgerSize  int                `json:"ledgerSize"`
	Engine      *legal.EngineStats `json:"engine,omitempty"`
}

// tenant resolves the request's tenant from ?tenant= or the
// X-Lawgate-Tenant header, defaulting to "default".
func (s *Server) tenant(r *http.Request) (*Tenant, *apiError) {
	id := r.URL.Query().Get("tenant")
	if id == "" {
		id = r.Header.Get("X-Lawgate-Tenant")
	}
	if id == "" {
		id = "default"
	}
	t := s.reg.Get(id)
	if t == nil {
		return nil, &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("unknown tenant %q", id)}
	}
	return t, nil
}

// admitRequest runs the admission pipeline shared by the evaluation
// endpoints: tenant rate limit, then the bounded work queue, under the
// request deadline. On success the caller owns release().
func (s *Server) admitRequest(ctx context.Context, t *Tenant) (release func(), aerr *apiError) {
	if t.bucket != nil {
		if ok, retry := t.bucket.take(); !ok {
			s.stats.rateLimited.Add(1)
			return nil, &apiError{status: http.StatusTooManyRequests,
				msg: fmt.Sprintf("tenant %q over rate limit", t.ID), retryAfter: retry}
		}
	}
	release, err := s.adm.admit(ctx)
	switch {
	case err == nil:
		return release, nil
	case errors.Is(err, errShed):
		s.stats.shed.Add(1)
		return nil, &apiError{status: http.StatusTooManyRequests,
			msg: "server over capacity, request shed", retryAfter: time.Second}
	default:
		return nil, &apiError{status: http.StatusGatewayTimeout,
			msg: "deadline expired while queued for admission"}
	}
}

func deadlineErr(stage string) *apiError {
	return &apiError{status: http.StatusGatewayTimeout,
		msg: "deadline expired during " + stage}
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) *apiError {
	t, aerr := s.tenant(r)
	if aerr != nil {
		return aerr
	}
	sc := getScratch()
	defer putScratch(sc)
	var a legal.Action
	if aerr := s.readAction(w, r, sc, &a); aerr != nil {
		return aerr
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, aerr := s.admitRequest(ctx, t)
	if aerr != nil {
		return aerr
	}
	defer release()
	if s.hook != nil {
		s.hook(ctx, t.ID, &a)
	}
	if ctx.Err() != nil {
		return deadlineErr("evaluation")
	}
	ev := t.Engine()
	ruling, err := ev.Engine.Evaluate(a)
	if err != nil {
		return &apiError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	s.stats.rulings.Add(1)
	t.audit(ledger.Draft{
		At:      s.now().UnixNano(),
		Kind:    ledger.KindService,
		Code:    ServiceRulingServed,
		Actor:   "lawgated",
		Subject: a.Name,
		Note:    "evaluate -> " + ruling.Required.String(),
	})
	buf := wire.GetBuffer()
	buf.B = appendEvaluateResponse(buf.B[:0], t.ID, ev.Revision, &ruling)
	writeRaw(w, http.StatusOK, buf.B)
	wire.PutBuffer(buf)
	return nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) *apiError {
	t, aerr := s.tenant(r)
	if aerr != nil {
		return aerr
	}
	sc := getScratch()
	defer putScratch(sc)
	if aerr := s.readActions(w, r, sc); aerr != nil {
		return aerr
	}
	actions := sc.actions
	if len(actions) > s.maxBatch {
		return &apiError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("batch of %d actions exceeds the %d-action cap", len(actions), s.maxBatch)}
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, aerr := s.admitRequest(ctx, t)
	if aerr != nil {
		return aerr
	}
	defer release()
	if s.hook != nil {
		var probe legal.Action
		if len(actions) > 0 {
			probe = actions[0]
		}
		s.hook(ctx, t.ID, &probe)
	}
	ev := t.Engine()
	rulings, err := ev.Engine.EvaluateBatch(ctx, actions)
	if err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
		return deadlineErr("batch evaluation")
	}
	var batchErrs []BatchError
	failed := collectBatchErrors(err, &batchErrs)
	for i := range rulings {
		if !failed[i] {
			s.stats.rulings.Add(1)
		}
	}
	t.audit(ledger.Draft{
		At:      s.now().UnixNano(),
		Kind:    ledger.KindService,
		Code:    ServiceRulingServed,
		Actor:   "lawgated",
		Subject: t.ID,
		Note:    fmt.Sprintf("batch: %d actions, %d invalid", len(actions), len(batchErrs)),
	})
	// Encode straight from the engine's rulings: the response never
	// materializes a []*report.RulingView.
	buf := wire.GetBuffer()
	buf.B = appendBatchResponse(buf.B[:0], t.ID, ev.Revision, len(actions), rulings, failed, batchErrs)
	writeRaw(w, http.StatusOK, buf.B)
	wire.PutBuffer(buf)
	return nil
}

// collectBatchErrors unpacks EvaluateBatch's joined per-index errors
// ("action %d: ..." per failed slot) into errs and reports which slots
// failed.
func collectBatchErrors(err error, errs *[]BatchError) map[int]bool {
	failed := map[int]bool{}
	if err == nil {
		return failed
	}
	list := []error{err}
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		list = u.Unwrap()
	}
	for _, e := range list {
		msg := e.Error()
		var idx int
		if _, serr := fmt.Sscanf(msg, "action %d:", &idx); serr == nil {
			failed[idx] = true
		} else {
			idx = -1
		}
		*errs = append(*errs, BatchError{Index: idx, Error: msg})
	}
	return failed
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) *apiError {
	t, aerr := s.tenant(r)
	if aerr != nil {
		return aerr
	}
	sc := getScratch()
	defer putScratch(sc)
	var a legal.Action
	if aerr := s.readAction(w, r, sc, &a); aerr != nil {
		return aerr
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, aerr := s.admitRequest(ctx, t)
	if aerr != nil {
		return aerr
	}
	defer release()
	if s.hook != nil {
		s.hook(ctx, t.ID, &a)
	}
	if ctx.Err() != nil {
		return deadlineErr("advisory")
	}
	ev := t.Engine()
	ruling, err := ev.Engine.Evaluate(a)
	if err != nil {
		return &apiError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	advice, err := ev.Engine.Advise(a)
	if err != nil {
		return &apiError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	resp := AdviseResponse{Tenant: t.ID, Revision: ev.Revision, Ruling: report.FromRuling(ruling)}
	for _, ad := range advice {
		resp.Advice = append(resp.Advice, AdviceItem{
			Required:    ad.Ruling.Required.String(),
			Regime:      ad.Ruling.Regime.String(),
			Explanation: ad.Explanation,
			Rule:        ad.Rule,
		})
	}
	s.stats.rulings.Add(1)
	t.audit(ledger.Draft{
		At:      s.now().UnixNano(),
		Kind:    ledger.KindService,
		Code:    ServiceAdviceServed,
		Actor:   "lawgated",
		Subject: a.Name,
		Note:    fmt.Sprintf("advise: %d redesigns", len(resp.Advice)),
	})
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) *apiError {
	t, aerr := s.tenant(r)
	if aerr != nil {
		return aerr
	}
	// Ledger() drains the audit spool first, so the checkpoint commits
	// to every request served before it.
	led := t.Ledger()
	cp := led.Checkpoint()
	resp := CheckpointResponse{
		Tenant: t.ID,
		Size:   cp.Size,
		Root:   hex.EncodeToString(cp.Root[:]),
		Head:   hex.EncodeToString(cp.Head[:]),
	}
	if sinceStr := r.URL.Query().Get("since"); sinceStr != "" {
		since, err := strconv.ParseUint(sinceStr, 10, 64)
		if err != nil {
			return &apiError{status: http.StatusBadRequest, msg: "invalid since: " + err.Error()}
		}
		if since > cp.Size {
			// The client claims a checkpoint ahead of this ledger: one
			// side has been rolled back or forged — a conflict worth a
			// dedicated status, not a silent empty proof.
			return &apiError{status: http.StatusConflict,
				msg: fmt.Sprintf("anchored size %d is ahead of ledger size %d", since, cp.Size)}
		}
		proof, err := led.ConsistencyProof(since, cp.Size)
		if err != nil {
			return &apiError{status: http.StatusInternalServerError, msg: err.Error()}
		}
		view := &ConsistencyView{OldSize: proof.OldSize, NewSize: proof.NewSize,
			Path: make([]string, len(proof.Path))}
		for i := range proof.Path {
			view.Path[i] = hex.EncodeToString(proof.Path[i][:])
		}
		resp.Consistency = view
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleInstallRules(w http.ResponseWriter, r *http.Request) *apiError {
	id := r.PathValue("id")
	var cfg RuleConfig
	if aerr := s.readJSON(w, r, &cfg); aerr != nil {
		return aerr
	}
	t, v, err := s.reg.Install(id, cfg)
	if err != nil {
		return &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	writeJSON(w, http.StatusOK, tenantView(t, v, nil))
	return nil
}

func (s *Server) handleTenantInfo(w http.ResponseWriter, r *http.Request) *apiError {
	id := r.PathValue("id")
	t := s.reg.Get(id)
	if t == nil {
		return &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("unknown tenant %q", id)}
	}
	v := t.Engine()
	stats := v.Engine.Stats()
	writeJSON(w, http.StatusOK, tenantView(t, v, &stats))
	return nil
}

func tenantView(t *Tenant, v *engineVersion, stats *legal.EngineStats) TenantView {
	container := v.Config.Container
	if container == "" {
		container = "per-file"
	}
	return TenantView{
		Tenant:      t.ID,
		Revision:    v.Revision,
		Container:   container,
		RuleCount:   v.RuleCount,
		InstalledAt: v.InstalledAt,
		LedgerSize:  t.Ledger().Len(),
		Engine:      stats,
	}
}
