package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
)

// Service ledger event codes, carried in ledger.Record.Code on
// KindService records.
const (
	// ServiceTenantCreated seals a tenant's provisioning.
	ServiceTenantCreated uint32 = iota + 1
	// ServiceRulesInstalled seals a doctrine-table hot swap.
	ServiceRulesInstalled
	// ServiceRulingServed seals one served evaluation (or one batch).
	ServiceRulingServed
	// ServiceAdviceServed seals one served advisory.
	ServiceAdviceServed
	// ServiceCheckpointSealed is the final record the drain sequence
	// appends: its note carries the root of everything before it.
	ServiceCheckpointSealed
)

// RuleConfig is the wire form of a tenant's doctrine table: a container
// doctrine plus an optional selection over the named default rules.
// Predicates never travel over the wire — the server only ever compiles
// tables from the vetted rules it ships with, so a tenant can narrow or
// re-doctrine the table but not inject code.
type RuleConfig struct {
	// Container selects the closed-container doctrine: "per-file"
	// (Crist, the default) or "single" (Runyan/Beusch).
	Container string `json:"container,omitempty"`
	// Rules, when non-empty, keeps only the named default rules, in
	// default-table order. Unknown names are rejected.
	Rules []string `json:"rules,omitempty"`
	// Disable drops the named rules from the selection.
	Disable []string `json:"disable,omitempty"`
	// CacheCapacity bounds the tenant engine's ruling cache; 0 leaves
	// it unbounded.
	CacheCapacity int `json:"cacheCapacity,omitempty"`
}

// compile builds a fresh engine from the config. The returned engine is
// fully constructed — dispatch index, cache, counters — before anyone
// can observe it, which is what makes the registry's pointer swap safe.
func (c *RuleConfig) compile() (*legal.Engine, int, error) {
	doctrine := legal.ContainerPerFile
	switch c.Container {
	case "", "per-file":
	case "single":
		doctrine = legal.ContainerSingle
	default:
		return nil, 0, fmt.Errorf("unknown container doctrine %q (want per-file or single)", c.Container)
	}
	table := legal.DefaultRules()
	byName := make(map[string]int, len(table))
	for i, r := range table {
		byName[r.Name] = i
	}
	selected := table
	if len(c.Rules) > 0 {
		keep := make(map[int]bool, len(c.Rules))
		for _, name := range c.Rules {
			i, ok := byName[name]
			if !ok {
				return nil, 0, fmt.Errorf("unknown rule %q", name)
			}
			keep[i] = true
		}
		selected = selected[:0:0]
		for i, r := range table {
			if keep[i] {
				selected = append(selected, r)
			}
		}
	}
	if len(c.Disable) > 0 {
		drop := make(map[string]bool, len(c.Disable))
		for _, name := range c.Disable {
			if _, ok := byName[name]; !ok {
				return nil, 0, fmt.Errorf("unknown rule %q", name)
			}
			drop[name] = true
		}
		kept := selected[:0:0]
		for _, r := range selected {
			if !drop[r.Name] {
				kept = append(kept, r)
			}
		}
		selected = kept
	}
	if len(selected) == 0 {
		return nil, 0, fmt.Errorf("rule selection is empty")
	}
	eng := legal.NewEngine(
		legal.WithRules(selected),
		legal.WithContainerDoctrine(doctrine),
		legal.WithRulingCache(0),
		legal.WithRulingCacheCapacity(c.CacheCapacity),
		legal.WithEngineStats(),
	)
	return eng, len(selected), nil
}

// summary renders the config for a ledger note.
func (c *RuleConfig) summary(ruleCount int) string {
	var b strings.Builder
	if c.Container == "" {
		b.WriteString("container=per-file")
	} else {
		b.WriteString("container=" + c.Container)
	}
	fmt.Fprintf(&b, " rules=%d", ruleCount)
	if len(c.Disable) > 0 {
		b.WriteString(" disabled=" + strings.Join(c.Disable, ","))
	}
	return b.String()
}

// engineVersion is one immutable installed doctrine table. The tenant's
// atomic pointer swings between versions; a request loads the pointer
// once and evaluates entirely against that version, so a hot swap never
// mixes tables mid-request.
type engineVersion struct {
	Engine      *legal.Engine
	Revision    uint64
	RuleCount   int
	Config      RuleConfig
	InstalledAt time.Time
}

// Tenant is one isolated jurisdiction/agency: its own engine versions,
// rate limiter, and audit ledger.
type Tenant struct {
	ID string

	eng    atomic.Pointer[engineVersion]
	bucket *tokenBucket
	led    *ledger.Ledger
	spool  auditSpool
}

// auditSpool batches served-request audit drafts so the serving path
// pays a cheap slice append instead of a full sealed ledger append.
// The spool drains through ledger.AppendBatch — amortizing hashing and
// Merkle maintenance across records — at a size threshold and before
// every read of the ledger, so external observers always see a fully
// sealed ledger in arrival order.
type auditSpool struct {
	mu     sync.Mutex
	drafts []ledger.Draft
}

// spoolFlushThreshold is the spool size that triggers an inline drain.
// 64 records amortize the batch-seal setup well past the knee of the
// AppendBatch curve while keeping worst-case deferred work small.
const spoolFlushThreshold = 64

// Engine returns the tenant's current engine version. Callers must use
// the returned version for the whole request and never re-load
// mid-request.
func (t *Tenant) Engine() *engineVersion { return t.eng.Load() }

// Ledger returns the tenant's audit ledger, sealing any spooled audit
// drafts first so the caller observes every served request.
func (t *Tenant) Ledger() *ledger.Ledger {
	t.flushAudit()
	return t.led
}

// audit enqueues an audit draft for batched sealing. Enqueue order is
// preserved across flushes, and the draft's At timestamp records the
// event time regardless of when its batch seals.
func (t *Tenant) audit(d ledger.Draft) {
	t.spool.mu.Lock()
	t.spool.drafts = append(t.spool.drafts, d)
	if len(t.spool.drafts) >= spoolFlushThreshold {
		t.flushLocked()
	}
	t.spool.mu.Unlock()
}

// flushAudit seals any spooled audit drafts. Every path that reads the
// ledger or appends to it directly must flush first to keep record
// order faithful to arrival order.
func (t *Tenant) flushAudit() {
	t.spool.mu.Lock()
	t.flushLocked()
	t.spool.mu.Unlock()
}

func (t *Tenant) flushLocked() {
	if len(t.spool.drafts) > 0 {
		t.led.AppendBatch(t.spool.drafts)
		t.spool.drafts = t.spool.drafts[:0]
	}
}

// Registry holds the per-tenant engines. Lookups are lock-free on the
// read path (a sync.Map get plus one atomic pointer load); installs
// compile the new table outside any lock and publish it with a single
// pointer store, so in-flight requests finish on the version they
// loaded and new requests see the new table immediately — zero
// downtime, no half-installed state observable.
type Registry struct {
	tenants sync.Map // id -> *Tenant
	mu      sync.Mutex
	rev     atomic.Uint64
	now     func() time.Time
	rate    float64
	burst   float64
}

// NewRegistry returns an empty registry. rate/burst configure each
// tenant's token bucket (rate <= 0 disables per-tenant rate limiting).
func NewRegistry(rate, burst float64, now func() time.Time) *Registry {
	if now == nil {
		now = time.Now
	}
	return &Registry{now: now, rate: rate, burst: burst}
}

// Get returns the tenant, or nil when unknown.
func (r *Registry) Get(id string) *Tenant {
	if v, ok := r.tenants.Load(id); ok {
		return v.(*Tenant)
	}
	return nil
}

// Tenants returns the tenant IDs, sorted.
func (r *Registry) Tenants() []string {
	var ids []string
	r.tenants.Range(func(k, _ any) bool {
		ids = append(ids, k.(string))
		return true
	})
	sort.Strings(ids)
	return ids
}

// Install compiles cfg and publishes it as tenant id's doctrine table,
// creating the tenant on first install. The compile happens before the
// tenant or its ledger is touched; a config error leaves the previous
// version serving.
func (r *Registry) Install(id string, cfg RuleConfig) (*Tenant, *engineVersion, error) {
	if err := validTenantID(id); err != nil {
		return nil, nil, err
	}
	eng, ruleCount, err := cfg.compile()
	if err != nil {
		return nil, nil, err
	}
	// Serialize installs so revisions observed on any one tenant are
	// monotonic; the swap itself is still a single pointer store.
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.Get(id)
	created := t == nil
	if created {
		t = &Tenant{ID: id, led: ledger.New()}
		if r.rate > 0 {
			t.bucket = newTokenBucket(r.rate, r.burst, r.now)
		}
	}
	v := &engineVersion{
		Engine:      eng,
		Revision:    r.rev.Add(1),
		RuleCount:   ruleCount,
		Config:      cfg,
		InstalledAt: r.now(),
	}
	t.eng.Store(v)
	// Flush any spooled served-request drafts first so install records
	// land after everything served under the previous revision, then
	// seal the install's own records as one batch.
	t.flushAudit()
	var drafts [2]ledger.Draft
	n := 0
	if created {
		drafts[n] = ledger.Draft{
			At:      r.now().UnixNano(),
			Kind:    ledger.KindService,
			Code:    ServiceTenantCreated,
			Actor:   "lawgated",
			Subject: id,
			Note:    "tenant provisioned",
		}
		n++
	}
	drafts[n] = ledger.Draft{
		At:      r.now().UnixNano(),
		Kind:    ledger.KindService,
		Code:    ServiceRulesInstalled,
		Actor:   "lawgated",
		Subject: id,
		Note:    fmt.Sprintf("revision %d: %s", v.Revision, cfg.summary(ruleCount)),
	}
	n++
	t.led.AppendBatch(drafts[:n])
	if created {
		r.tenants.Store(id, t)
	}
	return t, v, nil
}

// validTenantID keeps tenant IDs path- and log-safe.
func validTenantID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("tenant id must be 1-64 characters")
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("tenant id %q: invalid character %q", id, c)
		}
	}
	return nil
}
