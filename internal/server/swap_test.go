package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"lawgate/internal/legal"
	"lawgate/internal/report"
)

// cristAction is the scene-18 hash search (United States v. Crist): a
// government examination of a lawfully seized device that exceeds the
// original authority. The two container doctrines genuinely diverge on
// it — per-file requires a warrant, single-container does not — so any
// response exposes exactly which doctrine table ruled it.
func cristAction() legal.Action {
	return legal.Action{
		Name:                  "crist-hash-search",
		Actor:                 legal.ActorGovernment,
		Timing:                legal.TimingStored,
		Data:                  legal.DataDeviceContents,
		Source:                legal.SourceSeizedDevice,
		SearchBeyondAuthority: true,
	}
}

// TestHotSwapLinearizability races a rules hot-swap against 1000
// in-flight evaluations and byte-compares every response against the
// only two legal transcripts: the exact pre-swap response or the exact
// post-swap response. Any torn state — a half-installed table, a
// revision paired with the wrong doctrine, a mixed ruling — produces a
// third byte sequence and fails. Requests issued after the swap
// returns must all observe the new table.
func TestHotSwapLinearizability(t *testing.T) {
	s := mustServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: 64}

	tenant := s.Registry().Get("default")
	preVer := tenant.Engine()
	singleCfg := RuleConfig{Container: "single"}
	postEng, _, err := singleCfg.compile()
	if err != nil {
		t.Fatal(err)
	}

	// The two legal response bodies, rendered exactly as the handler
	// renders them. The post revision is preVer+1: the registry's
	// revision counter is global and nothing else installs during the
	// race.
	renderBody := func(eng *legal.Engine, rev uint64) []byte {
		t.Helper()
		ruling, err := eng.Evaluate(cristAction())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(EvaluateResponse{
			Tenant:   "default",
			Revision: rev,
			Ruling:   report.FromRuling(ruling),
		})
		if err != nil {
			t.Fatal(err)
		}
		return append(data, '\n')
	}
	preBody := renderBody(preVer.Engine, preVer.Revision)
	postBody := renderBody(postEng, preVer.Revision+1)
	if bytes.Equal(preBody, postBody) {
		t.Fatal("doctrine tables do not diverge on the probe action; the test proves nothing")
	}

	actionJSON, err := json.Marshal(cristAction())
	if err != nil {
		t.Fatal(err)
	}
	cfgJSON, err := json.Marshal(singleCfg)
	if err != nil {
		t.Fatal(err)
	}

	const inflight = 1000
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		pre, post int
		swapGate  = make(chan struct{})
		swapOnce  sync.Once
	)
	bodies := make([][]byte, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A quarter of the way in, fire the swap concurrently.
			if i == inflight/4 {
				swapOnce.Do(func() { close(swapGate) })
			}
			resp, err := client.Post(ts.URL+"/v1/evaluate", "application/json",
				bytes.NewReader(actionJSON))
			if err != nil {
				t.Errorf("evaluate %d: %v", i, err)
				return
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("evaluate %d: status %d body %s", i, resp.StatusCode, buf.Bytes())
				return
			}
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-swapGate
		req, err := http.NewRequest("PUT", ts.URL+"/v1/tenants/default/rules",
			bytes.NewReader(cfgJSON))
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Errorf("hot swap: %v", err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("hot swap: status %d", resp.StatusCode)
		}
	}()
	wg.Wait()

	for i, body := range bodies {
		switch {
		case body == nil:
			t.Fatalf("request %d produced no body", i)
		case bytes.Equal(body, preBody):
			mu.Lock()
			pre++
			mu.Unlock()
		case bytes.Equal(body, postBody):
			mu.Lock()
			post++
			mu.Unlock()
		default:
			t.Fatalf("request %d observed a third state:\n got  %s\n pre  %s\n post %s",
				i, body, preBody, postBody)
		}
	}
	if pre+post != inflight {
		t.Fatalf("pre %d + post %d != %d", pre, post, inflight)
	}
	if post == 0 {
		t.Fatal("no request observed the new table; the swap never landed during the race")
	}
	t.Logf("linearizable: %d pre-swap, %d post-swap, 0 torn", pre, post)

	// Every request issued after the swap completed sees only the new
	// table: the pointer store is immediately visible.
	for i := 0; i < 10; i++ {
		resp, err := client.Post(ts.URL+"/v1/evaluate", "application/json",
			bytes.NewReader(actionJSON))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(buf.Bytes(), postBody) {
			t.Fatalf("post-swap request %d still observes the old table: %s", i, buf.Bytes())
		}
	}
}
