package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
)

// TestGracefulShutdown drives the full drain sequence: readiness flips
// to 503 first, in-flight requests finish with real statuses, and every
// tenant ledger gains a verifiable final checkpoint record committing
// to everything served.
func TestGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	s := mustServer(t,
		WithTenants("default", "lab"),
		// The drain delay holds the listener open so the 503 readiness
		// flip is observable over the wire before connections stop.
		WithDrainDelay(250*time.Millisecond),
		WithEvalHook(func(ctx context.Context, _ string, a *legal.Action) {
			if a.Name == "slow" {
				select {
				case <-release:
				case <-ctx.Done():
				}
			}
		}),
	)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	// Warm both tenants so their ledgers have served records.
	for _, tenant := range []string{"default", "lab"} {
		resp, data := postJSON(t, http.DefaultClient,
			base+"/v1/evaluate?tenant="+tenant, validAction())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup %s: status %d body %s", tenant, resp.StatusCode, data)
		}
	}

	// Park one request in-flight, then begin the drain.
	var wg sync.WaitGroup
	inflightStatus := make(chan int, 1)
	slow := validAction()
	slow.Name = "slow"
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, http.DefaultClient, base+"/v1/evaluate", slow)
		inflightStatus <- resp.StatusCode
	}()
	waitFor(t, func() bool { return len(s.adm.slots) == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Readiness flips before the listener stops accepting.
	waitFor(t, func() bool { return !s.ready.Load() })
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz during drain: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}

	// Release the in-flight request; the drain must wait for it.
	close(release)
	if st := <-inflightStatus; st != http.StatusOK {
		t.Fatalf("in-flight request finished %d during drain, want 200", st)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	// Every tenant sealed a final checkpoint, and each ledger verifies
	// end to end with the checkpoint record as its last entry.
	cps := s.FinalCheckpoints()
	if len(cps) != 2 {
		t.Fatalf("final checkpoints = %d, want 2", len(cps))
	}
	for _, cp := range cps {
		led := s.Registry().Get(cp.Tenant).Ledger()
		if err := led.Verify(); err != nil {
			t.Fatalf("tenant %s: ledger verify: %v", cp.Tenant, err)
		}
		if got := uint64(led.Len()); got != cp.Checkpoint.Size+1 {
			t.Fatalf("tenant %s: ledger has %d records, want sealed size %d + 1",
				cp.Tenant, got, cp.Checkpoint.Size)
		}
		rec, err := led.Record(cp.Seq)
		if err != nil {
			t.Fatalf("tenant %s: reading seal record: %v", cp.Tenant, err)
		}
		if rec.Kind != ledger.KindService || rec.Code != ServiceCheckpointSealed {
			t.Fatalf("tenant %s: last record kind/code = %v/%d", cp.Tenant, rec.Kind, rec.Code)
		}
		// The sealed root must bridge from the checkpoint via a valid
		// consistency proof to the final ledger state.
		final := led.Checkpoint()
		proof, err := led.ConsistencyProof(cp.Checkpoint.Size, final.Size)
		if err != nil {
			t.Fatal(err)
		}
		if !ledger.VerifyConsistency(proof, cp.Checkpoint.Root, final.Root) {
			t.Fatalf("tenant %s: sealed checkpoint does not extend to final state", cp.Tenant)
		}
	}

	// The listener is closed: new connections fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestShutdownIdempotentWithoutListener covers Shutdown on a server
// that never listened (handler-only tests, unit harnesses).
func TestShutdownIdempotentWithoutListener(t *testing.T) {
	s := mustServer(t)
	if err := s.Shutdown(testCtx(t, time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(s.FinalCheckpoints()) != 1 {
		t.Fatalf("final checkpoints = %d, want 1", len(s.FinalCheckpoints()))
	}
}

// TestDrainDelayKeepsServing verifies the pre-drain window: during
// drainDelay the listener still serves (load balancers route away on
// readiness, not on connection refused).
func TestDrainDelayKeepsServing(t *testing.T) {
	s := mustServer(t, WithDrainDelay(300*time.Millisecond))
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return !s.ready.Load() })

	// Not ready, but still serving.
	resp, data := postJSON(t, http.DefaultClient, base+"/v1/evaluate", validAction())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("during drain delay: status %d body %s", resp.StatusCode, data)
	}
	var out EvaluateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("%s/healthz", base)); err == nil {
		t.Fatal("listener still accepting after drain delay shutdown")
	}
}
