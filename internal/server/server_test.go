package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
)

// testCtx returns a context that outlives the assertion it guards.
func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// validAction is a Title III wiretap: a government real-time content
// interception on a third-party network. It always evaluates cleanly
// and requires heavy process, so /v1/advise has redesigns to offer.
func validAction() legal.Action {
	return legal.Action{
		Name:   "wiretap-content",
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingRealTime,
		Data:   legal.DataContent,
		Source: legal.SourceThirdPartyNetwork,
	}
}

func mustServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, client *http.Client, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestEvaluateEndpoint(t *testing.T) {
	s := mustServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", validAction())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var out EvaluateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	if out.Tenant != "default" || out.Revision == 0 {
		t.Fatalf("tenant/revision = %q/%d", out.Tenant, out.Revision)
	}
	if out.Ruling.Required == "" || !out.Ruling.NeedsProcess {
		t.Fatalf("wiretap ruling = %+v, want process required", out.Ruling)
	}
	// The served ruling is sealed in the tenant ledger.
	led := s.Registry().Get("default").Ledger()
	if err := led.Verify(); err != nil {
		t.Fatalf("ledger verify: %v", err)
	}
	st := s.Stats()
	if st.Requests != 1 || st.OK != 1 || st.Rulings != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeliberateClientErrors(t *testing.T) {
	s := mustServer(t, WithMaxBody(512), WithMaxBatch(4))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	t.Run("malformed JSON is 400", func(t *testing.T) {
		resp, err := client.Post(ts.URL+"/v1/evaluate", "application/json",
			strings.NewReader(`{"Name": "broken`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})

	t.Run("oversized body is 413", func(t *testing.T) {
		big := `{"Name": "` + strings.Repeat("x", 4096) + `"}`
		resp, err := client.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413", resp.StatusCode)
		}
	})

	t.Run("unknown tenant is 404", func(t *testing.T) {
		resp, _ := postJSON(t, client, ts.URL+"/v1/evaluate?tenant=nobody", validAction())
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
	})

	t.Run("invalid action is 422", func(t *testing.T) {
		a := validAction()
		a.Actor = legal.Actor(99)
		resp, _ := postJSON(t, client, ts.URL+"/v1/evaluate", a)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422", resp.StatusCode)
		}
	})

	t.Run("oversized batch is 413", func(t *testing.T) {
		batch := make([]legal.Action, 5)
		for i := range batch {
			batch[i] = validAction()
		}
		resp, _ := postJSON(t, client, ts.URL+"/v1/evaluate/batch", batch)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413", resp.StatusCode)
		}
	})

	t.Run("wrong method is 405", func(t *testing.T) {
		resp, err := client.Get(ts.URL + "/v1/evaluate")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})

	st := s.Stats()
	if st.ClientErrors == 0 {
		t.Fatalf("stats = %+v, want client errors counted", st)
	}
	if st.Panics != 0 {
		t.Fatalf("panics = %d during client-error exercise", st.Panics)
	}
}

func TestBatchEndpointPartialFailure(t *testing.T) {
	s := mustServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := validAction()
	bad.Actor = legal.Actor(99)
	batch := []legal.Action{validAction(), bad, validAction()}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/evaluate/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rulings) != 3 {
		t.Fatalf("rulings = %d, want 3 slots", len(out.Rulings))
	}
	if out.Rulings[0] == nil || out.Rulings[1] != nil || out.Rulings[2] == nil {
		t.Fatalf("slot validity = [%v %v %v], want [ok nil ok]",
			out.Rulings[0] != nil, out.Rulings[1] != nil, out.Rulings[2] != nil)
	}
	if len(out.Errors) != 1 || out.Errors[0].Index != 1 {
		t.Fatalf("errors = %+v, want one at index 1", out.Errors)
	}
	if got := s.Stats().Rulings; got != 2 {
		t.Fatalf("rulings counter = %d, want 2", got)
	}
}

func TestAdviseEndpoint(t *testing.T) {
	s := mustServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/advise", validAction())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var out AdviseResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Advice) == 0 {
		t.Fatalf("no advice for a super-warrant wiretap; body %s", data)
	}
	for _, ad := range out.Advice {
		if ad.Rule == "" || ad.Explanation == "" {
			t.Fatalf("advice item missing provenance: %+v", ad)
		}
	}
}

// TestCheckpointConsistency anchors a checkpoint, serves more rulings,
// then verifies — client-side, from the wire form alone — that the new
// checkpoint's ledger extends the anchored one.
func TestCheckpointConsistency(t *testing.T) {
	s := mustServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	for i := 0; i < 5; i++ {
		resp, data := postJSON(t, client, ts.URL+"/v1/evaluate", validAction())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup %d: status %d body %s", i, resp.StatusCode, data)
		}
	}
	old := getCheckpoint(t, client, ts.URL+"/v1/ledger/checkpoint")
	if old.Size == 0 {
		t.Fatal("anchored checkpoint is empty")
	}

	for i := 0; i < 7; i++ {
		postJSON(t, client, ts.URL+"/v1/evaluate", validAction())
	}
	cur := getCheckpoint(t, client,
		fmt.Sprintf("%s/v1/ledger/checkpoint?since=%d", ts.URL, old.Size))
	if cur.Consistency == nil {
		t.Fatal("no consistency proof returned for ?since")
	}
	proof := ledger.ConsistencyProof{
		OldSize: cur.Consistency.OldSize,
		NewSize: cur.Consistency.NewSize,
		Path:    make([][32]byte, len(cur.Consistency.Path)),
	}
	for i, h := range cur.Consistency.Path {
		proof.Path[i] = unhex32(t, h)
	}
	if !ledger.VerifyConsistency(proof, unhex32(t, old.Root), unhex32(t, cur.Root)) {
		t.Fatalf("consistency proof rejected: old %+v cur %+v", old, cur)
	}

	// A client claiming a checkpoint ahead of the ledger gets a 409.
	resp, err := client.Get(fmt.Sprintf("%s/v1/ledger/checkpoint?since=%d", ts.URL, cur.Size+100))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("ahead-of-ledger since: status = %d, want 409", resp.StatusCode)
	}
}

func getCheckpoint(t *testing.T, client *http.Client, url string) CheckpointResponse {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status = %d, body %s", resp.StatusCode, data)
	}
	var cp CheckpointResponse
	if err := json.Unmarshal(data, &cp); err != nil {
		t.Fatal(err)
	}
	return cp
}

func unhex32(t *testing.T, s string) [32]byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 32 {
		t.Fatalf("bad hex digest %q: %v", s, err)
	}
	var out [32]byte
	copy(out[:], b)
	return out
}

func TestRateLimit(t *testing.T) {
	s := mustServer(t, WithRateLimit(0.5, 1))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", validAction())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", validAction())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	if got := s.Stats().RateLimited; got != 1 {
		t.Fatalf("rateLimited = %d, want 1", got)
	}
}

// TestAdmissionShedAndQueueDeadline drives both overload outcomes: a
// full wait queue sheds instantly with 429, and a queued request whose
// deadline expires before a slot frees gets 504.
func TestAdmissionShedAndQueueDeadline(t *testing.T) {
	gate := make(chan struct{})
	hook := func(ctx context.Context, _ string, a *legal.Action) {
		if a.Name == "block" {
			select {
			case <-gate:
			case <-ctx.Done():
			}
		}
	}
	s := mustServer(t, WithAdmission(1, 0), WithEvalHook(hook))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Occupy the only slot.
	blocked := validAction()
	blocked.Name = "block"
	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, client, ts.URL+"/v1/evaluate", blocked)
		done <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.Stats().Requests >= 1 && len(s.adm.slots) == 1 })

	// maxWait=0: the next request is shed immediately.
	resp, _ := postJSON(t, client, ts.URL+"/v1/evaluate", validAction())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}

	close(gate)
	if st := <-done; st != http.StatusOK {
		t.Fatalf("blocked request finished %d, want 200", st)
	}

	// Now with a wait queue: a queued request expires to 504 under its
	// own (client-lowered) deadline.
	s2 := mustServer(t, WithAdmission(1, 4), WithEvalHook(hook))
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	gate = make(chan struct{})
	defer close(gate)
	go func() {
		postJSON(t, ts2.Client(), ts2.URL+"/v1/evaluate", blocked)
	}()
	waitFor(t, func() bool { return len(s2.adm.slots) == 1 })

	body, _ := json.Marshal(validAction())
	req, _ := http.NewRequest("POST", ts2.URL+"/v1/evaluate", bytes.NewReader(body))
	req.Header.Set("X-Lawgate-Deadline-Ms", "80")
	resp2, err := ts2.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline status = %d, want 504", resp2.StatusCode)
	}
	if got := s2.Stats().DeadlineExpired; got != 1 {
		t.Fatalf("deadlineExpired = %d, want 1", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPanicRecovery(t *testing.T) {
	s := mustServer(t, WithEvalHook(func(_ context.Context, _ string, a *legal.Action) {
		if a.Name == "boom" {
			panic("chaos: poisoned request")
		}
	}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	poison := validAction()
	poison.Name = "boom"
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", poison)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned request: status = %d body %s, want 500", resp.StatusCode, data)
	}
	if got := s.Stats().Panics; got != 1 {
		t.Fatalf("panics = %d, want 1", got)
	}
	// The process survived: the next request is served normally.
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", validAction())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request: status = %d, want 200", resp.StatusCode)
	}
}

// TestSlowBodyTimeout stalls a request body on a raw TCP connection and
// expects a deliberate 408, not an open socket or a hang.
func TestSlowBodyTimeout(t *testing.T) {
	s := mustServer(t, WithBodyReadTimeout(100*time.Millisecond))
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(testCtx(t, 5*time.Second))

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/evaluate HTTP/1.1\r\nHost: lawgated\r\n"+
		"Content-Type: application/json\r\nContent-Length: 500\r\n\r\n{\"Name\":")
	// Stall: never deliver the remaining bytes.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("reading status line from stalled request: %v", err)
	}
	status := string(buf[:n])
	if !strings.HasPrefix(status, "HTTP/1.1 408") {
		t.Fatalf("stalled body got %q, want HTTP/1.1 408", strings.SplitN(status, "\r\n", 2)[0])
	}
}

// TestNoGoroutineLeaks drives a burst of deadline-expiring and shed
// requests and checks the goroutine count settles back to baseline.
func TestNoGoroutineLeaks(t *testing.T) {
	s := mustServer(t,
		WithAdmission(2, 2),
		WithDeadline(50*time.Millisecond),
		WithEvalHook(func(ctx context.Context, _ string, a *legal.Action) {
			if a.Name == "block" {
				<-ctx.Done()
			}
		}),
	)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := runtime.NumGoroutine()
	done := make(chan struct{}, 32)
	blocked := validAction()
	blocked.Name = "block"
	for i := 0; i < 32; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", blocked)
		}()
	}
	for i := 0; i < 32; i++ {
		<-done
	}
	// Idle keep-alive connections pin client and server goroutines;
	// drop them so only a genuine server-side leak keeps the count up.
	waitFor(t, func() bool {
		ts.Client().CloseIdleConnections()
		return runtime.NumGoroutine() <= before+5
	})
	st := s.Stats()
	if st.DeadlineExpired == 0 {
		t.Fatalf("stats = %+v, want some 504s from the burst", st)
	}
}

func TestInstallRulesValidation(t *testing.T) {
	s := mustServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	put := func(id string, cfg any) (*http.Response, []byte) {
		t.Helper()
		body, _ := json.Marshal(cfg)
		req, _ := http.NewRequest("PUT", ts.URL+"/v1/tenants/"+id+"/rules", bytes.NewReader(body))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}

	if resp, data := put("lab", RuleConfig{Container: "nested"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad container: status = %d body %s, want 400", resp.StatusCode, data)
	}
	if resp, data := put("lab", RuleConfig{Rules: []string{"no-such-rule"}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown rule: status = %d body %s, want 400", resp.StatusCode, data)
	}
	if resp, data := put("bad/id", RuleConfig{}); resp.StatusCode != http.StatusBadRequest {
		// "/" never reaches the handler as part of {id}; a character the
		// mux accepts but the registry rejects:
		_ = data
		_ = resp
	}
	if resp, data := put("lab!", RuleConfig{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tenant id: status = %d body %s, want 400", resp.StatusCode, data)
	}
	// A failed install must leave no tenant behind.
	if s.Registry().Get("lab") != nil {
		t.Fatal("failed install provisioned the tenant anyway")
	}

	resp, data := put("lab", RuleConfig{Container: "single", CacheCapacity: 64})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good install: status = %d body %s", resp.StatusCode, data)
	}
	var tv TenantView
	if err := json.Unmarshal(data, &tv); err != nil {
		t.Fatal(err)
	}
	if tv.Tenant != "lab" || tv.Container != "single" || tv.RuleCount == 0 {
		t.Fatalf("install view = %+v", tv)
	}

	// Tenant info reflects the install, and engine stats are exposed.
	postJSON(t, client, ts.URL+"/v1/evaluate?tenant=lab", validAction())
	infoResp, infoData := func() (*http.Response, []byte) {
		r, err := client.Get(ts.URL + "/v1/tenants/lab")
		if err != nil {
			t.Fatal(err)
		}
		d, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r, d
	}()
	if infoResp.StatusCode != http.StatusOK {
		t.Fatalf("tenant info: status = %d body %s", infoResp.StatusCode, infoData)
	}
	var info TenantView
	if err := json.Unmarshal(infoData, &info); err != nil {
		t.Fatal(err)
	}
	if info.Engine == nil || info.LedgerSize == 0 {
		t.Fatalf("tenant info missing engine stats or ledger size: %+v", info)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	s := mustServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Ready {
		t.Fatalf("metricsz = %+v, want ready", st)
	}
}
