package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// errShed is returned when the wait queue is full: the request is shed
// immediately (fast 429 + Retry-After) instead of joining a line that
// can only grow latency for everyone.
var errShed = errors.New("server: admission queue full")

// admission is the server's bounded work queue. slots caps the number
// of requests evaluating concurrently; up to maxWait more may wait for
// a slot (bounded by their own deadlines); everything beyond that is
// shed. The two bounds turn overload into fast, deliberate 429s with
// stable latency for admitted work, instead of unbounded queueing
// followed by timeouts for everyone.
type admission struct {
	slots   chan struct{}
	waiting atomic.Int64
	maxWait int64

	shed     atomic.Uint64
	expired  atomic.Uint64
	admitted atomic.Uint64
}

// newAdmission sizes the controller: slots concurrent evaluations,
// maxWait queued waiters.
func newAdmission(slots, maxWait int) *admission {
	if slots < 1 {
		slots = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &admission{slots: make(chan struct{}, slots), maxWait: int64(maxWait)}
}

// admit acquires an evaluation slot, waiting within ctx's deadline. The
// release function must be called exactly once when the work is done.
// Errors: errShed when the wait queue is full, ctx.Err() when the
// deadline expired while queued — the waiter goroutine always unwinds,
// never leaks.
func (a *admission) admit(ctx context.Context) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return a.release, nil
	default:
	}
	if a.waiting.Add(1) > a.maxWait {
		a.waiting.Add(-1)
		a.shed.Add(1)
		return nil, errShed
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return a.release, nil
	case <-ctx.Done():
		a.expired.Add(1)
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// queueDepth reports how many requests are currently waiting.
func (a *admission) queueDepth() int64 { return a.waiting.Load() }

// tokenBucket is a per-tenant rate limiter: rate tokens/second refilled
// continuously up to burst. take is cheap (one mutex, no goroutines, no
// timers) and reports how long until a token would be available, which
// becomes the 429's Retry-After.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst float64, now func() time.Time) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	b := &tokenBucket{rate: rate, burst: burst, tokens: burst, now: now}
	b.last = now()
	return b
}

// take consumes one token if available; otherwise it reports the wait
// until the next token accrues.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}
