// Package server is lawgated's hardened multi-tenant ruling service:
// the legal engine behind an HTTP/JSON API that is designed to degrade
// deliberately instead of falling over. Every request ends in an
// intentional status:
//
//   - per-tenant doctrine tables hot-swap via one atomic pointer store
//     (in-flight requests finish on the version they loaded);
//   - admission control bounds concurrent evaluation and the wait
//     queue, shedding overload as fast 429s with Retry-After;
//   - per-request deadlines propagate through context and expire as
//     504s, never as leaked goroutines;
//   - panics are converted to 500s and a counter, slow request bodies
//     to 408s, oversized bodies to 413s;
//   - SIGTERM drains: readiness flips first, in-flight work finishes,
//     each tenant ledger seals a final checkpoint, then the process
//     exits 0.
package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
)

// Defaults, overridable per Option.
const (
	DefaultDeadline        = 5 * time.Second
	DefaultBodyReadTimeout = 2 * time.Second
	DefaultMaxBody         = 1 << 20
	DefaultMaxWait         = 1024
	DefaultMaxBatch        = 4096
)

// EvalHook runs inside an admitted evaluation slot, before the engine
// is consulted. It is the test and chaos seam: a hook that blocks
// simulates slow evaluation (driving queueing, shedding, and deadline
// expiry), and a hook that panics proves the recovery middleware.
// Production servers leave it nil.
type EvalHook func(ctx context.Context, tenant string, a *legal.Action)

// Server is the lawgated HTTP service. Construct with New; serve via
// Handler (tests), Start/Serve (production), and stop with Shutdown.
type Server struct {
	reg  *Registry
	adm  *admission
	hook EvalHook
	now  func() time.Time
	mux  *http.ServeMux
	hs   *http.Server

	ready    atomic.Bool
	stats    serverStats
	finalCps []TenantCheckpoint

	tenants         []string
	slots           int
	maxWait         int
	rate, burst     float64
	deadline        time.Duration
	bodyReadTimeout time.Duration
	maxBody         int64
	maxBatch        int
	drainDelay      time.Duration
	cacheCapacity   int
}

// serverStats are the service's monotonic counters; read them with
// Stats or GET /metricsz.
type serverStats struct {
	requests    atomic.Uint64
	ok          atomic.Uint64
	clientErr   atomic.Uint64
	rateLimited atomic.Uint64
	shed        atomic.Uint64
	expired     atomic.Uint64
	panics      atomic.Uint64
	rulings     atomic.Uint64
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	// Requests counts every request reaching a v1 handler.
	Requests uint64 `json:"requests"`
	// OK counts 2xx responses.
	OK uint64 `json:"ok"`
	// ClientErrors counts deliberate 4xx responses other than 429
	// (malformed, oversized, slow-body, unknown tenant, invalid action).
	ClientErrors uint64 `json:"clientErrors"`
	// RateLimited counts 429s from a tenant's token bucket.
	RateLimited uint64 `json:"rateLimited"`
	// Shed counts 429s from a full admission queue.
	Shed uint64 `json:"shed"`
	// DeadlineExpired counts 504s.
	DeadlineExpired uint64 `json:"deadlineExpired"`
	// Panics counts requests converted to 500 by the recovery
	// middleware — each one a request that would have crashed the
	// process.
	Panics uint64 `json:"panics"`
	// Rulings counts rulings served (batch slots included).
	Rulings uint64 `json:"rulings"`
	// QueueDepth is the current number of admission waiters.
	QueueDepth int64 `json:"queueDepth"`
	// Ready reports the readiness gate.
	Ready bool `json:"ready"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:        s.stats.requests.Load(),
		OK:              s.stats.ok.Load(),
		ClientErrors:    s.stats.clientErr.Load(),
		RateLimited:     s.stats.rateLimited.Load(),
		Shed:            s.stats.shed.Load(),
		DeadlineExpired: s.stats.expired.Load(),
		Panics:          s.stats.panics.Load(),
		Rulings:         s.stats.rulings.Load(),
		QueueDepth:      s.adm.queueDepth(),
		Ready:           s.ready.Load(),
	}
}

// TenantCheckpoint is one tenant's sealed final checkpoint, produced by
// the drain sequence.
type TenantCheckpoint struct {
	Tenant     string
	Checkpoint ledger.Checkpoint
	// Seq is the sequence number of the ServiceCheckpointSealed record
	// committing to the checkpoint.
	Seq uint64
}

// Option configures New.
type Option func(*Server)

// WithTenants provisions the named tenants at startup, each on the
// default doctrine table.
func WithTenants(ids ...string) Option {
	return func(s *Server) { s.tenants = ids }
}

// WithAdmission sizes the bounded work queue: slots concurrent
// evaluations (<= 0 selects one per CPU) and maxWait queued waiters
// before shedding.
func WithAdmission(slots, maxWait int) Option {
	return func(s *Server) { s.slots, s.maxWait = slots, maxWait }
}

// WithRateLimit sets each tenant's token bucket (rate tokens/second,
// burst capacity). rate <= 0 disables per-tenant limiting.
func WithRateLimit(rate, burst float64) Option {
	return func(s *Server) { s.rate, s.burst = rate, burst }
}

// WithDeadline sets the default (and maximum) per-request deadline.
// Clients may lower it per request with the X-Lawgate-Deadline-Ms
// header, never raise it.
func WithDeadline(d time.Duration) Option {
	return func(s *Server) { s.deadline = d }
}

// WithBodyReadTimeout bounds how long a client may take to deliver a
// request body; a slower client gets 408, not an open socket.
func WithBodyReadTimeout(d time.Duration) Option {
	return func(s *Server) { s.bodyReadTimeout = d }
}

// WithMaxBody caps request body bytes; larger bodies get 413.
func WithMaxBody(n int64) Option {
	return func(s *Server) { s.maxBody = n }
}

// WithMaxBatch caps the action count of one batch request.
func WithMaxBatch(n int) Option {
	return func(s *Server) { s.maxBatch = n }
}

// WithDrainDelay holds the server up (still serving, readiness already
// 503) for d before the listener stops accepting, giving load balancers
// time to route away.
func WithDrainDelay(d time.Duration) Option {
	return func(s *Server) { s.drainDelay = d }
}

// WithEvalHook installs the evaluation hook (see EvalHook).
func WithEvalHook(h EvalHook) Option {
	return func(s *Server) { s.hook = h }
}

// WithCacheCapacity bounds each tenant engine's ruling cache.
func WithCacheCapacity(n int) Option {
	return func(s *Server) { s.cacheCapacity = n }
}

// WithClock injects a clock for tests.
func WithClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// New builds the service, provisions its tenants, and compiles their
// engines; the returned server is ready (readiness 200) before any
// listener exists.
func New(opts ...Option) (*Server, error) {
	s := &Server{
		now:             time.Now,
		tenants:         []string{"default"},
		maxWait:         DefaultMaxWait,
		deadline:        DefaultDeadline,
		bodyReadTimeout: DefaultBodyReadTimeout,
		maxBody:         DefaultMaxBody,
		maxBatch:        DefaultMaxBatch,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.slots <= 0 {
		s.slots = runtime.GOMAXPROCS(0)
	}
	s.adm = newAdmission(s.slots, s.maxWait)
	s.reg = NewRegistry(s.rate, s.burst, s.now)
	for _, id := range s.tenants {
		if _, _, err := s.reg.Install(id, RuleConfig{CacheCapacity: s.cacheCapacity}); err != nil {
			return nil, fmt.Errorf("server: provisioning tenant %q: %w", id, err)
		}
	}
	s.routes()
	// Built here, not in Serve: Shutdown may run concurrently with a
	// background Serve and must see a fully constructed http.Server.
	s.hs = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      s.deadline + s.bodyReadTimeout + 10*time.Second,
		IdleTimeout:       60 * time.Second,
	}
	s.ready.Store(true)
	return s, nil
}

// Registry exposes the tenant registry (the swap-linearizability tests
// and the bench harness drive it directly).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the fully wired HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// routes wires the endpoint table.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/evaluate", s.wrap(s.handleEvaluate))
	s.mux.HandleFunc("POST /v1/evaluate/batch", s.wrap(s.handleBatch))
	s.mux.HandleFunc("POST /v1/advise", s.wrap(s.handleAdvise))
	s.mux.HandleFunc("GET /v1/ledger/checkpoint", s.wrap(s.handleCheckpoint))
	s.mux.HandleFunc("PUT /v1/tenants/{id}/rules", s.wrap(s.handleInstallRules))
	s.mux.HandleFunc("GET /v1/tenants/{id}", s.wrap(s.handleTenantInfo))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
}

// apiError is a deliberate error response: status, message, optional
// Retry-After.
type apiError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

// wrap is the resilience middleware around every v1 handler: request
// counting, panic recovery (a poisoned request becomes a 500 and a
// counter, not a dead process), and uniform error rendering.
func (s *Server) wrap(h func(w http.ResponseWriter, r *http.Request) *apiError) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				s.stats.panics.Add(1)
				if !sw.wrote {
					s.writeErr(sw, &apiError{status: http.StatusInternalServerError,
						msg: fmt.Sprintf("internal error: %v", p)})
				}
			}
		}()
		if err := h(sw, r); err != nil {
			s.writeErr(sw, err)
			return
		}
		s.stats.ok.Add(1)
	}
}

// writeErr renders an apiError and bumps the matching counter.
func (s *Server) writeErr(w http.ResponseWriter, e *apiError) {
	switch {
	case e.status == http.StatusTooManyRequests:
		// Partitioned in the caller between shed and rate-limited.
	case e.status == http.StatusGatewayTimeout:
		s.stats.expired.Add(1)
	case e.status >= 400 && e.status < 500:
		s.stats.clientErr.Add(1)
	}
	if e.retryAfter > 0 {
		secs := int(e.retryAfter / time.Second)
		if e.retryAfter%time.Second != 0 {
			secs++
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, e.status, map[string]string{"error": e.msg})
}

// statusWriter records whether a response has started, so the panic
// recovery path knows if a 500 can still be written. Unwrap lets
// http.ResponseController reach the underlying writer for read
// deadlines.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// writeJSON marshals v and writes it with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding response", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
	if status != http.StatusNoContent {
		w.Write([]byte{'\n'})
	}
}

// readJSON reads and decodes a request body into an arbitrary value
// under the server's robustness caps (see readBody). The hot endpoints
// use the typed wire-codec readers in codec.go; this stdlib path
// remains for cold, schema-rich bodies like RuleConfig.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, into any) *apiError {
	sc := getScratch()
	defer putScratch(sc)
	body, aerr := s.readBody(w, r, sc.body)
	sc.body = body
	if aerr != nil {
		return aerr
	}
	// json.Decoder, not Unmarshal: the previous streaming reader took
	// the first JSON value and ignored trailing bytes, and the typed
	// wire decoders share that semantic.
	if err := json.NewDecoder(bytes.NewReader(sc.body)).Decode(into); err != nil {
		return &apiError{status: http.StatusBadRequest, msg: "malformed JSON: " + err.Error()}
	}
	return nil
}

// requestContext derives the per-request deadline context: the server
// default, lowered (never raised) by an X-Lawgate-Deadline-Ms header.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.deadline
	if h := r.Header.Get("X-Lawgate-Deadline-Ms"); h != "" {
		if ms, err := strconv.Atoi(h); err == nil && ms >= 0 {
			if hd := time.Duration(ms) * time.Millisecond; hd < d {
				d = hd
			}
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// Serve serves on l until Shutdown. It returns http.ErrServerClosed
// after a graceful shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	return s.hs.Serve(l)
}

// Start listens on addr and serves in the background, returning the
// bound address (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := s.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "lawgated: serve:", err)
		}
	}()
	return l.Addr(), nil
}

// Shutdown is the drain sequence: readiness flips to 503 first (load
// balancers stop routing while the listener still accepts), the drain
// delay elapses, the listener closes and every in-flight and queued
// request finishes within ctx, and each tenant ledger seals a final
// ServiceCheckpointSealed record committing to everything served. A nil
// return means a complete drain; the process may exit 0.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	if s.drainDelay > 0 {
		select {
		case <-time.After(s.drainDelay):
		case <-ctx.Done():
		}
	}
	if s.hs != nil {
		if err := s.hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("server: drain: %w", err)
		}
	}
	s.finalCps = s.sealFinalCheckpoints()
	return nil
}

// sealFinalCheckpoints appends one checkpoint record per tenant and
// returns the sealed commitments.
func (s *Server) sealFinalCheckpoints() []TenantCheckpoint {
	var out []TenantCheckpoint
	for _, id := range s.reg.Tenants() {
		t := s.reg.Get(id)
		// Drain the audit spool so the final checkpoint commits to every
		// request served before the listener closed.
		t.flushAudit()
		cp := t.led.Checkpoint()
		seq := t.led.Append(ledger.Draft{
			At:      s.now().UnixNano(),
			Kind:    ledger.KindService,
			Code:    ServiceCheckpointSealed,
			Actor:   "lawgated",
			Subject: id,
			Note: fmt.Sprintf("final checkpoint: size=%d root=%s",
				cp.Size, hex.EncodeToString(cp.Root[:])),
		})
		out = append(out, TenantCheckpoint{Tenant: id, Checkpoint: cp, Seq: seq})
	}
	return out
}

// FinalCheckpoints returns the checkpoints sealed by Shutdown (nil
// before a drain).
func (s *Server) FinalCheckpoints() []TenantCheckpoint { return s.finalCps }
