// Package loadgen is lawgated's Go-native load and chaos harness. It
// drives a running server at high concurrency through a deliberately
// hostile schedule — request bursts, malformed JSON, oversized bodies,
// slow-loris connections, zero-deadline requests, poisoned (panicking)
// evaluations, and mid-run doctrine hot swaps — and accounts for every
// request: each must end in an intentional HTTP status. A request that
// dies without one (connection reset, unexpected EOF, client timeout)
// is counted as unaccounted, and a robust server produces zero.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lawgate/internal/legal"
	"lawgate/internal/server"
)

// ChaosPanicName is the action name the bench server's EvalHook treats
// as poison: evaluating it panics inside the handler, exercising the
// recovery middleware under load.
const ChaosPanicName = "chaos-panic"

// Operation kinds in the traffic schedule.
const (
	opEvaluate = iota
	opBatch
	opAdvise
	opCheckpoint
	opMalformed
	opOversized
	opZeroDeadline
	opUnknownTenant
	opPoison
)

// Config shapes one load run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the number of concurrent request loops.
	Workers int
	// Duration bounds the run.
	Duration time.Duration
	// Chaos mixes hostile traffic (malformed, oversized, zero-deadline,
	// poisoned) into the schedule and adds slow-loris connections.
	Chaos bool
	// SlowLoris is the number of concurrent slow-loris connections to
	// hold open when Chaos is set (default 2).
	SlowLoris int
	// SwapEvery hot-swaps the default tenant's doctrine table at this
	// period (0 disables swaps).
	SwapEvery time.Duration
	// OversizeBytes sizes the oversized-body probe; it must exceed the
	// server's max body (default 2 MiB against the 1 MiB default).
	OversizeBytes int
}

// Result is the accounting of one run.
type Result struct {
	// Requests is every request the harness issued, including chaos.
	Requests uint64 `json:"requests"`
	// Statuses histograms the HTTP statuses received.
	Statuses map[int]uint64 `json:"statuses"`
	// Unaccounted counts requests that ended without any HTTP status —
	// the number a robust server keeps at zero.
	Unaccounted uint64 `json:"unaccounted"`
	// Rulings counts 200s on /v1/evaluate (the latency population).
	Rulings uint64 `json:"rulings"`
	// Swaps counts completed mid-run doctrine hot swaps.
	Swaps uint64 `json:"swaps"`
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration `json:"elapsed_ns"`
	// P50 and P99 are evaluate-latency percentiles.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// RulingsPerSec is Rulings / Elapsed.
	RulingsPerSec float64 `json:"rulings_per_sec"`
	// AllocsPerRequest is the process-wide heap-allocation delta
	// (runtime.MemStats.Mallocs) across the run divided by Requests.
	// Against lawgated's in-process bench server it counts client and
	// server allocations together — the number the zero-alloc serving
	// path is budgeted against; against a remote server it counts only
	// the harness side.
	AllocsPerRequest float64 `json:"allocs_per_request"`
}

// DeliberateStatuses is the set of statuses the server is allowed to
// answer under chaos: success, the deliberate 4xx family, recovered
// panics, and deadline expiry.
var DeliberateStatuses = map[int]bool{
	http.StatusOK:                    true,
	http.StatusBadRequest:            true,
	http.StatusNotFound:              true,
	http.StatusMethodNotAllowed:      true,
	http.StatusRequestTimeout:        true,
	http.StatusRequestEntityTooLarge: true,
	http.StatusUnprocessableEntity:   true,
	http.StatusTooManyRequests:       true,
	http.StatusInternalServerError:   true,
	http.StatusGatewayTimeout:        true,
	http.StatusServiceUnavailable:    true,
}

// Check returns an error describing any accounting violation: an
// unaccounted request or a status outside DeliberateStatuses.
func (r *Result) Check() error {
	if r.Unaccounted > 0 {
		return fmt.Errorf("loadgen: %d of %d requests ended without a status", r.Unaccounted, r.Requests)
	}
	for status, n := range r.Statuses {
		if !DeliberateStatuses[status] {
			return fmt.Errorf("loadgen: %d responses with non-deliberate status %d", n, status)
		}
	}
	if r.Rulings == 0 {
		return fmt.Errorf("loadgen: no rulings served in %d requests", r.Requests)
	}
	return nil
}

// evaluateBody is the steady-state request: a Title III wiretap that
// always evaluates cleanly.
func evaluateBody(name string) []byte {
	return mustJSON(legal.Action{
		Name:   name,
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingRealTime,
		Data:   legal.DataContent,
		Source: legal.SourceThirdPartyNetwork,
	})
}

// Run executes the schedule and returns the accounting. The error is
// only for harness-level failures (bad config); server misbehavior is
// reported through the Result.
func Run(cfg Config) (*Result, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.SlowLoris <= 0 {
		cfg.SlowLoris = 2
	}
	if cfg.OversizeBytes <= 0 {
		cfg.OversizeBytes = 2 << 20
	}
	u, err := url.Parse(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers * 2,
			MaxIdleConnsPerHost: cfg.Workers * 2,
		},
		Timeout: 30 * time.Second,
	}
	defer client.CloseIdleConnections()

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		statuses  = map[int]uint64{}
		latencies = make([][]int64, cfg.Workers)
		requests  atomic.Uint64
		unacct    atomic.Uint64
		rulings   atomic.Uint64
		swaps     atomic.Uint64
	)
	record := func(status int) {
		mu.Lock()
		statuses[status]++
		mu.Unlock()
	}

	// One 25-op cycle of the traffic mix, chaos interleaved throughout
	// so every category lands within any 25 consecutive iterations —
	// even short or race-detector-slowed runs exercise the whole
	// hostile repertoire. Without Chaos the hostile slots fall back to
	// steady evaluates.
	schedule := [25]int{
		opEvaluate, opEvaluate, opMalformed, opEvaluate, opEvaluate,
		opBatch, opEvaluate, opOversized, opEvaluate, opEvaluate,
		opZeroDeadline, opEvaluate, opEvaluate, opAdvise, opEvaluate,
		opUnknownTenant, opEvaluate, opEvaluate, opCheckpoint, opEvaluate,
		opPoison, opEvaluate, opEvaluate, opEvaluate, opEvaluate,
	}

	steady := evaluateBody("load-wiretap")
	batch := func() []byte {
		var base legal.Action
		if err := json.Unmarshal(steady, &base); err != nil {
			// The steady body is marshaled from a literal above; failing
			// to round-trip it means the harness itself is broken.
			panic(fmt.Sprintf("loadgen: steady body does not round-trip: %v", err))
		}
		actions := make([]legal.Action, 8)
		for i := range actions {
			actions[i] = base
			actions[i].Name = fmt.Sprintf("load-batch-%d", i)
		}
		return mustJSON(actions)
	}()
	poison := evaluateBody(ChaosPanicName)
	oversized := []byte(`{"Name": "` + strings.Repeat("x", cfg.OversizeBytes) + `"}`)

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				op := schedule[i%len(schedule)]
				if !cfg.Chaos && op != opBatch && op != opAdvise && op != opCheckpoint {
					op = opEvaluate
				}
				requests.Add(1)
				var (
					status int
					ok     bool
					t0     time.Time
				)
				switch op {
				case opEvaluate: // valid evaluate, latency recorded
					t0 = time.Now()
					status, ok = post(client, cfg.BaseURL+"/v1/evaluate", steady, nil)
				case opBatch:
					status, ok = post(client, cfg.BaseURL+"/v1/evaluate/batch", batch, nil)
				case opAdvise:
					status, ok = post(client, cfg.BaseURL+"/v1/advise", steady, nil)
				case opCheckpoint:
					status, ok = get(client, cfg.BaseURL+"/v1/ledger/checkpoint")
				case opMalformed: // -> 400
					status, ok = post(client, cfg.BaseURL+"/v1/evaluate",
						[]byte(`{"Name": "broken`), nil)
				case opOversized: // -> 413
					status, ok = post(client, cfg.BaseURL+"/v1/evaluate", oversized, nil)
				case opZeroDeadline: // -> 504
					status, ok = post(client, cfg.BaseURL+"/v1/evaluate", steady,
						map[string]string{"X-Lawgate-Deadline-Ms": "0"})
				case opUnknownTenant: // -> 404
					status, ok = post(client, cfg.BaseURL+"/v1/evaluate?tenant=no-such", steady, nil)
				case opPoison: // -> recovered 500
					status, ok = post(client, cfg.BaseURL+"/v1/evaluate", poison, nil)
				}
				if !ok {
					unacct.Add(1)
					continue
				}
				record(status)
				if op == opEvaluate && status == http.StatusOK {
					rulings.Add(1)
					latencies[w] = append(latencies[w], time.Since(t0).Nanoseconds())
				}
			}
		}(w)
	}

	if cfg.SwapEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfgs := [][]byte{
				mustJSON(server.RuleConfig{Container: "per-file"}),
				mustJSON(server.RuleConfig{Container: "single"}),
			}
			tick := time.NewTicker(cfg.SwapEvery)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				requests.Add(1)
				status, ok := put(client, cfg.BaseURL+"/v1/tenants/default/rules", cfgs[i%2])
				if !ok {
					unacct.Add(1)
					continue
				}
				record(status)
				if status == http.StatusOK {
					swaps.Add(1)
				}
			}
		}()
	}

	if cfg.Chaos {
		for i := 0; i < cfg.SlowLoris; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					status, ok := slowLoris(ctx, u.Host)
					if !ok && ctx.Err() != nil {
						// The harness canceled the dial; not a drop.
						return
					}
					requests.Add(1)
					if !ok {
						unacct.Add(1)
						continue
					}
					record(status)
				}
			}()
		}
	}

	wg.Wait()
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	var all []int64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &Result{
		Requests:    requests.Load(),
		Statuses:    statuses,
		Unaccounted: unacct.Load(),
		Rulings:     rulings.Load(),
		Swaps:       swaps.Load(),
		Elapsed:     elapsed,
	}
	if len(all) > 0 {
		res.P50 = time.Duration(all[len(all)/2])
		res.P99 = time.Duration(all[len(all)*99/100])
	}
	if elapsed > 0 {
		res.RulingsPerSec = float64(res.Rulings) / elapsed.Seconds()
	}
	if res.Requests > 0 {
		res.AllocsPerRequest = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Requests)
	}
	return res, nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// post issues the request and reports the status; ok is false when the
// request ended without one.
func post(client *http.Client, url string, body []byte, headers map[string]string) (int, bool) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, false
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	return do(client, req)
}

func put(client *http.Client, url string, body []byte) (int, bool) {
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return 0, false
	}
	req.Header.Set("Content-Type", "application/json")
	return do(client, req)
}

func get(client *http.Client, url string) (int, bool) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, false
	}
	return do(client, req)
}

func do(client *http.Client, req *http.Request) (int, bool) {
	resp, err := client.Do(req)
	if err != nil {
		return 0, false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, true
}

// slowLoris opens a raw TCP connection, sends headers promising a body
// it never delivers, and waits for the server's verdict. A robust
// server answers 408 within its body-read timeout instead of leaving
// the socket open.
func slowLoris(ctx context.Context, host string) (int, bool) {
	d := net.Dialer{Timeout: 5 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return 0, false
	}
	defer conn.Close()
	_, err = fmt.Fprintf(conn, "POST /v1/evaluate HTTP/1.1\r\nHost: %s\r\n"+
		"Content-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"Name\":", host)
	if err != nil {
		return 0, false
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil || n < 12 {
		return 0, false
	}
	var status int
	if _, err := fmt.Sscanf(string(buf[:n]), "HTTP/1.1 %d", &status); err != nil {
		return 0, false
	}
	return status, true
}
