package loadgen

import (
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"

	"lawgate/internal/legal"
	"lawgate/internal/server"
)

// TestChaosRunFullyAccounted is the harness proving the headline claim:
// a full chaos schedule — bursts, malformed, oversized, slow-loris,
// poisoned requests, mid-run hot swaps — completes with every request
// ending in a deliberate status, zero panic crashes, and no goroutine
// leak.
func TestChaosRunFullyAccounted(t *testing.T) {
	s, err := server.New(
		server.WithAdmission(4, 64),
		server.WithBodyReadTimeout(200*time.Millisecond),
		server.WithEvalHook(func(_ context.Context, _ string, a *legal.Action) {
			if a.Name == ChaosPanicName {
				panic("chaos: poisoned evaluation")
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	res, err := Run(Config{
		BaseURL:   "http://" + addr.String(),
		Workers:   8,
		Duration:  700 * time.Millisecond,
		Chaos:     true,
		SwapEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\nstatuses: %v", err, res.Statuses)
	}
	t.Logf("requests=%d statuses=%v swaps=%d p50=%s p99=%s rulings/sec=%.0f",
		res.Requests, res.Statuses, res.Swaps, res.P50, res.P99, res.RulingsPerSec)

	// The chaos schedule actually exercised the defenses.
	for status, why := range map[int]string{
		http.StatusBadRequest:            "malformed JSON",
		http.StatusRequestEntityTooLarge: "oversized body",
		http.StatusRequestTimeout:        "slow-loris body",
		http.StatusNotFound:              "unknown tenant",
		http.StatusInternalServerError:   "poisoned evaluation",
		http.StatusGatewayTimeout:        "zero deadline",
	} {
		if res.Statuses[status] == 0 {
			t.Errorf("chaos never produced %d (%s)", status, why)
		}
	}
	if res.Swaps == 0 {
		t.Error("no hot swap completed mid-run")
	}
	st := s.Stats()
	if st.Panics == 0 {
		t.Error("no panic was recovered; the poison probe never landed")
	}

	// Drain and prove no goroutine leak survived the chaos.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after chaos: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+5 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, started with %d: leak after chaos run",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(s.FinalCheckpoints()) == 0 {
		t.Fatal("drain sealed no final checkpoint")
	}
}

// TestResultCheck pins the accounting rules.
func TestResultCheck(t *testing.T) {
	ok := &Result{Requests: 10, Rulings: 5, Statuses: map[int]uint64{200: 5, 429: 5}}
	if err := ok.Check(); err != nil {
		t.Fatal(err)
	}
	if err := (&Result{Requests: 10, Rulings: 5, Unaccounted: 1,
		Statuses: map[int]uint64{200: 5}}).Check(); err == nil {
		t.Fatal("unaccounted request passed Check")
	}
	if err := (&Result{Requests: 10, Rulings: 5,
		Statuses: map[int]uint64{200: 5, 502: 1}}).Check(); err == nil {
		t.Fatal("non-deliberate status passed Check")
	}
	if err := (&Result{Requests: 10, Statuses: map[int]uint64{400: 10}}).Check(); err == nil {
		t.Fatal("zero rulings passed Check")
	}
}
