package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"lawgate/internal/legal"
	"lawgate/internal/wire"
)

// This file is the serving hot path's request/response lifecycle:
// pooled body reads, wire-codec decoding of actions, and response
// envelopes appended straight from rulings into pooled buffers. Every
// byte written here is pinned byte-identical to what writeJSON
// (json.Marshal on the response structs) would produce — codec_test.go
// proves it — so clients, golden files, and the conformance probe see
// no change. The cold endpoints (checkpoint, tenant views, metrics,
// errors) stay on writeJSON: their cost is not on the serving path and
// stdlib keeps them trivially correct.

// reqScratch is the pooled per-request state: the body buffer every
// read reuses and the action slice batch decoding appends into. The
// actions backing is safe to reuse because the engine copies actions
// by value; the sub-objects inside each decoded action are always
// fresh (see wire.DecodeAction).
type reqScratch struct {
	body    []byte
	actions []legal.Action
}

// maxRetainedScratch caps what a pathological request can pin in the
// pool — one oversized body or batch does not hold its high-water
// backing forever.
const maxRetainedScratch = 1 << 20

var scratchPool = sync.Pool{
	New: func() any { return &reqScratch{body: make([]byte, 0, 4096)} },
}

func getScratch() *reqScratch { return scratchPool.Get().(*reqScratch) }

func putScratch(sc *reqScratch) {
	if cap(sc.body) > maxRetainedScratch || cap(sc.actions) > DefaultMaxBatch {
		return
	}
	scratchPool.Put(sc)
}

// readBody reads the whole request body into buf under the same
// robustness caps readJSON enforces: at most maxBody bytes (413
// beyond), delivered within bodyReadTimeout (408), read failures as
// 400. The returned slice reuses buf's backing.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, buf []byte) ([]byte, *apiError) {
	rc := http.NewResponseController(w)
	// Best effort: test recorders don't support deadlines; real
	// connections do, and that is where slow-loris defense matters.
	_ = rc.SetReadDeadline(s.now().Add(s.bodyReadTimeout))
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			if err == io.EOF {
				break
			}
			var tooLarge *http.MaxBytesError
			switch {
			case errors.As(err, &tooLarge):
				return buf, &apiError{status: http.StatusRequestEntityTooLarge,
					msg: fmt.Sprintf("request body exceeds %d bytes", s.maxBody)}
			case errors.Is(err, os.ErrDeadlineExceeded):
				return buf, &apiError{status: http.StatusRequestTimeout,
					msg: fmt.Sprintf("request body not delivered within %s", s.bodyReadTimeout)}
			default:
				return buf, &apiError{status: http.StatusBadRequest, msg: "malformed JSON: " + err.Error()}
			}
		}
	}
	// Reset the read deadline so response writing is not affected.
	_ = rc.SetReadDeadline(time.Time{})
	return buf, nil
}

// readAction reads and decodes one action through the wire codec.
func (s *Server) readAction(w http.ResponseWriter, r *http.Request, sc *reqScratch, a *legal.Action) *apiError {
	body, aerr := s.readBody(w, r, sc.body)
	sc.body = body
	if aerr != nil {
		return aerr
	}
	if err := wire.DecodeAction(sc.body, a); err != nil {
		return &apiError{status: http.StatusBadRequest, msg: "malformed JSON: " + err.Error()}
	}
	return nil
}

// readActions reads and decodes a batch of actions into the scratch's
// reused slice — the batch body is materialized once (the pooled body
// buffer) and decoded once, never copied into an intermediate value.
func (s *Server) readActions(w http.ResponseWriter, r *http.Request, sc *reqScratch) *apiError {
	body, aerr := s.readBody(w, r, sc.body)
	sc.body = body
	if aerr != nil {
		return aerr
	}
	actions, err := wire.DecodeActions(sc.body, sc.actions)
	sc.actions = actions
	if err != nil {
		return &apiError{status: http.StatusBadRequest, msg: "malformed JSON: " + err.Error()}
	}
	return nil
}

var newline = []byte{'\n'}

// writeRaw writes pre-encoded JSON exactly as writeJSON writes
// marshaled bytes: Content-Type, status, body, trailing newline.
func writeRaw(w http.ResponseWriter, status int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
	w.Write(newline)
}

// appendEvaluateResponse appends the /v1/evaluate envelope —
// byte-identical to json.Marshal(EvaluateResponse{...}) — projecting
// the ruling straight into view JSON without materializing a
// RulingView.
func appendEvaluateResponse(dst []byte, tenant string, revision uint64, r *legal.Ruling) []byte {
	dst = append(dst, `{"tenant":`...)
	dst = wire.AppendString(dst, tenant)
	dst = append(dst, `,"revision":`...)
	dst = wire.AppendUint(dst, revision)
	dst = append(dst, `,"ruling":`...)
	dst = wire.AppendRulingViewFromRuling(dst, r)
	return append(dst, '}')
}

// appendBatchResponse appends the /v1/evaluate/batch envelope straight
// from the engine's rulings: one slot per input action, null for
// failed slots, errors listed when present — byte-identical to
// json.Marshal(BatchResponse{...}) without materializing the
// []*report.RulingView.
func appendBatchResponse(dst []byte, tenant string, revision uint64, slots int, rulings []legal.Ruling, failed map[int]bool, errs []BatchError) []byte {
	dst = append(dst, `{"tenant":`...)
	dst = wire.AppendString(dst, tenant)
	dst = append(dst, `,"revision":`...)
	dst = wire.AppendUint(dst, revision)
	dst = append(dst, `,"rulings":[`...)
	for i := 0; i < slots; i++ {
		if i > 0 {
			dst = append(dst, ',')
		}
		if i >= len(rulings) || failed[i] {
			dst = append(dst, "null"...)
			continue
		}
		dst = wire.AppendRulingViewFromRuling(dst, &rulings[i])
	}
	dst = append(dst, ']')
	if len(errs) > 0 {
		dst = append(dst, `,"errors":[`...)
		for i := range errs {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"index":`...)
			dst = wire.AppendInt(dst, int64(errs[i].Index))
			dst = append(dst, `,"error":`...)
			dst = wire.AppendString(dst, errs[i].Error)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}
