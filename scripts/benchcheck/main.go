// Command benchcheck validates a BENCH_netsim.json produced by
// scripts/bench.sh and prints each benchmark next to its baseline, so
// CI can prove the bench tooling still works and a human can read the
// before/after deltas at a glance.
//
// Usage:
//
//	go run ./scripts/benchcheck [FILE]
//
// FILE defaults to BENCH_netsim.json. Exits non-zero when the file is
// missing, malformed, or structurally empty.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"text/tabwriter"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type baseline struct {
	Note       string  `json:"note"`
	Benchmarks []entry `json:"benchmarks"`
}

type report struct {
	Schema     string    `json:"schema"`
	Go         string    `json:"go"`
	Count      int       `json:"count"`
	Benchmarks []entry   `json:"benchmarks"`
	Baseline   *baseline `json:"baseline"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	path := "BENCH_netsim.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != "lawgate-bench/v1" {
		return fmt.Errorf("%s: schema %q, want lawgate-bench/v1", path, r.Schema)
	}
	if r.Count < 1 {
		return fmt.Errorf("%s: count %d, want >= 1", path, r.Count)
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", path)
	}
	base := map[string]entry{}
	if r.Baseline != nil {
		for _, b := range r.Baseline.Benchmarks {
			base[b.Name] = b
		}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s: %d benchmarks (%s, median of %d)\n", path, len(r.Benchmarks), r.Go, r.Count)
	fmt.Fprintln(tw, "benchmark\tns/op\tallocs/op\tvs baseline ns\tvs baseline allocs")
	for _, b := range r.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("%s: benchmark with empty name", path)
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("%s: %s: ns_per_op %v, want > 0", path, b.Name, b.NsPerOp)
		}
		nsDelta, allocDelta := "-", "-"
		if old, ok := base[b.Name]; ok {
			nsDelta = delta(old.NsPerOp, b.NsPerOp)
			allocDelta = delta(old.AllocsPerOp, b.AllocsPerOp)
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%g\t%s\t%s\n", b.Name, b.NsPerOp, b.AllocsPerOp, nsDelta, allocDelta)
	}
	return tw.Flush()
}

// delta formats the relative change from old to new, negative = faster
// or fewer.
func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "±0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}
