// Command benchcheck validates a BENCH_*.json produced by
// scripts/bench.sh and prints each benchmark next to its baseline, so
// CI can prove the bench tooling still works and a human can read the
// before/after deltas at a glance.
//
// Usage:
//
//	go run ./scripts/benchcheck [-min-speedup NAME=FACTOR ...] [FILE]
//
// FILE defaults to BENCH_netsim.json. Exits non-zero when the file is
// missing, malformed, or structurally empty.
//
// Each -min-speedup NAME=FACTOR (repeatable) asserts that benchmark
// NAME runs at least FACTOR times faster than its embedded baseline
// entry (baseline ns/op divided by current ns/op >= FACTOR). This is
// how CI pins a claimed optimization: the committed BENCH file must
// keep proving the speedup it was merged for.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type baseline struct {
	Note       string  `json:"note"`
	Benchmarks []entry `json:"benchmarks"`
}

type report struct {
	Schema     string    `json:"schema"`
	Go         string    `json:"go"`
	Count      int       `json:"count"`
	Benchmarks []entry   `json:"benchmarks"`
	Baseline   *baseline `json:"baseline"`
}

// speedupFlags collects repeated -min-speedup NAME=FACTOR assertions.
type speedupFlags map[string]float64

func (s speedupFlags) String() string {
	parts := make([]string, 0, len(s))
	for name, f := range s {
		parts = append(parts, fmt.Sprintf("%s=%g", name, f))
	}
	return strings.Join(parts, ",")
}

func (s speedupFlags) Set(v string) error {
	name, factorStr, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want NAME=FACTOR, got %q", v)
	}
	factor, err := strconv.ParseFloat(factorStr, 64)
	if err != nil || factor <= 0 {
		return fmt.Errorf("invalid factor in %q", v)
	}
	s[name] = factor
	return nil
}

func main() {
	minSpeedups := speedupFlags{}
	flag.Var(minSpeedups, "min-speedup",
		"assert NAME runs >= FACTOR times faster than its baseline (repeatable)")
	flag.Parse()
	if err := run(flag.Args(), minSpeedups); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, minSpeedups speedupFlags) error {
	path := "BENCH_netsim.json"
	if len(args) > 0 {
		path = args[0]
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != "lawgate-bench/v1" {
		return fmt.Errorf("%s: schema %q, want lawgate-bench/v1", path, r.Schema)
	}
	if r.Count < 1 {
		return fmt.Errorf("%s: count %d, want >= 1", path, r.Count)
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", path)
	}
	base := map[string]entry{}
	if r.Baseline != nil {
		for _, b := range r.Baseline.Benchmarks {
			base[b.Name] = b
		}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s: %d benchmarks (%s, median of %d)\n", path, len(r.Benchmarks), r.Go, r.Count)
	fmt.Fprintln(tw, "benchmark\tns/op\tallocs/op\tvs baseline ns\tvs baseline allocs")
	current := map[string]entry{}
	for _, b := range r.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("%s: benchmark with empty name", path)
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("%s: %s: ns_per_op %v, want > 0", path, b.Name, b.NsPerOp)
		}
		current[b.Name] = b
		nsDelta, allocDelta := "-", "-"
		if old, ok := base[b.Name]; ok {
			nsDelta = delta(old.NsPerOp, b.NsPerOp)
			allocDelta = delta(old.AllocsPerOp, b.AllocsPerOp)
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%g\t%s\t%s\n", b.Name, b.NsPerOp, b.AllocsPerOp, nsDelta, allocDelta)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for name, factor := range minSpeedups {
		b, ok := current[name]
		if !ok {
			return fmt.Errorf("%s: -min-speedup %s: no such benchmark", path, name)
		}
		old, ok := base[name]
		if !ok {
			return fmt.Errorf("%s: -min-speedup %s: no baseline entry", path, name)
		}
		got := old.NsPerOp / b.NsPerOp
		if got < factor {
			return fmt.Errorf("%s: %s speedup %.2fx (baseline %.4g ns/op -> %.4g ns/op), want >= %.2fx",
				path, name, got, old.NsPerOp, b.NsPerOp, factor)
		}
		fmt.Printf("%s: %.2fx vs baseline (>= %.2fx required)\n", name, got, factor)
	}
	return nil
}

// delta formats the relative change from old to new, negative = faster
// or fewer.
func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "±0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}
