// Command benchcheck validates a BENCH_*.json produced by
// scripts/bench.sh and prints each benchmark next to its baseline, so
// CI can prove the bench tooling still works and a human can read the
// before/after deltas at a glance.
//
// Usage:
//
//	go run ./scripts/benchcheck [-min-speedup NAME=FACTOR ...] \
//	    [-max-ns NAME=NS ...] [-max-allocs NAME=N ...] [FILE]
//
// FILE defaults to BENCH_netsim.json. Exits non-zero when the file is
// missing, malformed, or structurally empty.
//
// Each -min-speedup NAME=FACTOR (repeatable) asserts that benchmark
// NAME runs at least FACTOR times faster than its embedded baseline
// entry (baseline ns/op divided by current ns/op >= FACTOR). This is
// how CI pins a claimed optimization: the committed BENCH file must
// keep proving the speedup it was merged for.
//
// -max-ns NAME=NS and -max-allocs NAME=N (both repeatable) are
// absolute budgets, independent of any baseline: benchmark NAME must
// show ns_per_op <= NS, or allocs_per_op <= N. These pin hard targets
// like "the ledger append stays under a microsecond and allocates
// nothing" even when the baseline entry describes replaced code.
//
// -min-pair-speedup BASE:FAST:FACTOR and -max-pair-ratio A:B:FACTOR
// (both repeatable) compare two benchmarks from the SAME file —
// no baseline involved, so they gate claims measured in one run, like
// "the 8-partition engine beats the 1-partition engine 3x on this
// machine". The separator is ':' because benchmark names carry '/' and
// '='. -min-pair-speedup asserts ns(BASE)/ns(FAST) >= FACTOR;
// -max-pair-ratio asserts ns(B)/ns(A) <= FACTOR (an overhead bound for
// machines that cannot demonstrate the speedup).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// OpsPerSec is set by throughput-style benchmarks (the lawgated
	// chaos bench reports rulings/sec); 0 when not applicable.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	// EventsPerSec and NodesPerSec are set by the sharded-engine
	// macro-benchmark; 0 when not applicable.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	NodesPerSec  float64 `json:"nodes_per_sec,omitempty"`
}

type baseline struct {
	Note       string  `json:"note"`
	Benchmarks []entry `json:"benchmarks"`
}

type report struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	// Cores records the machine the file was produced on; CI uses it
	// to decide whether a parallel-speedup claim is testable there.
	Cores      int       `json:"cores,omitempty"`
	Count      int       `json:"count"`
	Benchmarks []entry   `json:"benchmarks"`
	Baseline   *baseline `json:"baseline"`
}

// pairAssert is one NAME:NAME:FACTOR comparison between two benchmarks
// of the current file.
type pairAssert struct {
	a, b   string
	factor float64
}

// pairValues collects repeated A:B:FACTOR flag assertions. ':' is the
// separator because benchmark names contain '/' and '='.
type pairValues struct {
	pairs []pairAssert
}

func (s *pairValues) String() string {
	parts := make([]string, 0, len(s.pairs))
	for _, p := range s.pairs {
		parts = append(parts, fmt.Sprintf("%s:%s:%g", p.a, p.b, p.factor))
	}
	return strings.Join(parts, ",")
}

func (s *pairValues) Set(v string) error {
	i := strings.LastIndex(v, ":")
	if i < 0 {
		return fmt.Errorf("want NAME:NAME:FACTOR, got %q", v)
	}
	factor, err := strconv.ParseFloat(v[i+1:], 64)
	if err != nil || factor <= 0 {
		return fmt.Errorf("invalid FACTOR in %q", v)
	}
	a, b, ok := strings.Cut(v[:i], ":")
	if !ok || a == "" || b == "" {
		return fmt.Errorf("want NAME:NAME:FACTOR, got %q", v)
	}
	s.pairs = append(s.pairs, pairAssert{a: a, b: b, factor: factor})
	return nil
}

// namedValues collects repeated NAME=VALUE flag assertions.
type namedValues struct {
	vals       map[string]float64
	allowZero  bool
	valueLabel string
}

func (s *namedValues) String() string {
	parts := make([]string, 0, len(s.vals))
	for name, f := range s.vals {
		parts = append(parts, fmt.Sprintf("%s=%g", name, f))
	}
	return strings.Join(parts, ",")
}

func (s *namedValues) Set(v string) error {
	name, valStr, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want NAME=%s, got %q", s.valueLabel, v)
	}
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil || val < 0 || (val == 0 && !s.allowZero) {
		return fmt.Errorf("invalid %s in %q", s.valueLabel, v)
	}
	if s.vals == nil {
		s.vals = map[string]float64{}
	}
	s.vals[name] = val
	return nil
}

func main() {
	minSpeedups := &namedValues{valueLabel: "FACTOR"}
	maxNs := &namedValues{valueLabel: "NS"}
	maxAllocs := &namedValues{valueLabel: "N", allowZero: true}
	minOps := &namedValues{valueLabel: "OPS"}
	pairSpeedups := &pairValues{}
	pairRatios := &pairValues{}
	flag.Var(minSpeedups, "min-speedup",
		"assert NAME runs >= FACTOR times faster than its baseline (repeatable)")
	flag.Var(maxNs, "max-ns",
		"assert NAME's ns_per_op <= NS, an absolute budget (repeatable)")
	flag.Var(maxAllocs, "max-allocs",
		"assert NAME's allocs_per_op <= N, an absolute budget (repeatable)")
	flag.Var(minOps, "min-ops",
		"assert NAME's ops_per_sec >= OPS, an absolute throughput floor (repeatable)")
	flag.Var(pairSpeedups, "min-pair-speedup",
		"assert ns(BASE)/ns(FAST) >= FACTOR between two current benchmarks, as BASE:FAST:FACTOR (repeatable)")
	flag.Var(pairRatios, "max-pair-ratio",
		"assert ns(B)/ns(A) <= FACTOR between two current benchmarks, as A:B:FACTOR (repeatable)")
	flag.Parse()
	if err := run(flag.Args(), minSpeedups.vals, maxNs.vals, maxAllocs.vals, minOps.vals,
		pairSpeedups.pairs, pairRatios.pairs); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, minSpeedups, maxNs, maxAllocs, minOps map[string]float64,
	pairSpeedups, pairRatios []pairAssert) error {
	path := "BENCH_netsim.json"
	if len(args) > 0 {
		path = args[0]
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != "lawgate-bench/v1" {
		return fmt.Errorf("%s: schema %q, want lawgate-bench/v1", path, r.Schema)
	}
	if r.Count < 1 {
		return fmt.Errorf("%s: count %d, want >= 1", path, r.Count)
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", path)
	}
	base := map[string]entry{}
	if r.Baseline != nil {
		for _, b := range r.Baseline.Benchmarks {
			base[b.Name] = b
		}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	host := r.Go
	if r.Cores > 0 {
		host = fmt.Sprintf("%s, %d cores", r.Go, r.Cores)
	}
	fmt.Fprintf(tw, "%s: %d benchmarks (%s, median of %d)\n", path, len(r.Benchmarks), host, r.Count)
	fmt.Fprintln(tw, "benchmark\tns/op\tallocs/op\tvs baseline ns\tvs baseline allocs")
	current := map[string]entry{}
	for _, b := range r.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("%s: benchmark with empty name", path)
		}
		// Metric-only entries (e.g. the chaos bench's allocs/request
		// counter) carry no timing; require at least one positive
		// metric so an all-zero entry still fails loudly.
		if b.NsPerOp <= 0 && b.AllocsPerOp <= 0 && b.OpsPerSec <= 0 &&
			b.EventsPerSec <= 0 && b.NodesPerSec <= 0 {
			return fmt.Errorf("%s: %s: no positive metric (ns_per_op %v)", path, b.Name, b.NsPerOp)
		}
		current[b.Name] = b
		nsDelta, allocDelta := "-", "-"
		if old, ok := base[b.Name]; ok {
			nsDelta = delta(old.NsPerOp, b.NsPerOp)
			allocDelta = delta(old.AllocsPerOp, b.AllocsPerOp)
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%g\t%s\t%s\n", b.Name, b.NsPerOp, b.AllocsPerOp, nsDelta, allocDelta)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for name, factor := range minSpeedups {
		b, ok := current[name]
		if !ok {
			return fmt.Errorf("%s: -min-speedup %s: no such benchmark", path, name)
		}
		old, ok := base[name]
		if !ok {
			return fmt.Errorf("%s: -min-speedup %s: no baseline entry", path, name)
		}
		if b.NsPerOp <= 0 || old.NsPerOp <= 0 {
			return fmt.Errorf("%s: -min-speedup %s: entry has no timing data", path, name)
		}
		got := old.NsPerOp / b.NsPerOp
		if got < factor {
			return fmt.Errorf("%s: %s speedup %.2fx (baseline %.4g ns/op -> %.4g ns/op), want >= %.2fx",
				path, name, got, old.NsPerOp, b.NsPerOp, factor)
		}
		fmt.Printf("%s: %.2fx vs baseline (>= %.2fx required)\n", name, got, factor)
	}
	for name, budget := range maxNs {
		b, ok := current[name]
		if !ok {
			return fmt.Errorf("%s: -max-ns %s: no such benchmark", path, name)
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("%s: -max-ns %s: entry has no timing data", path, name)
		}
		if b.NsPerOp > budget {
			return fmt.Errorf("%s: %s runs at %.4g ns/op, over the %.4g ns/op budget",
				path, name, b.NsPerOp, budget)
		}
		fmt.Printf("%s: %.4g ns/op (<= %.4g budget)\n", name, b.NsPerOp, budget)
	}
	for name, budget := range maxAllocs {
		b, ok := current[name]
		if !ok {
			return fmt.Errorf("%s: -max-allocs %s: no such benchmark", path, name)
		}
		if b.AllocsPerOp > budget {
			return fmt.Errorf("%s: %s allocates %g allocs/op, over the %g allocs/op budget",
				path, name, b.AllocsPerOp, budget)
		}
		fmt.Printf("%s: %g allocs/op (<= %g budget)\n", name, b.AllocsPerOp, budget)
	}
	for name, floor := range minOps {
		b, ok := current[name]
		if !ok {
			return fmt.Errorf("%s: -min-ops %s: no such benchmark", path, name)
		}
		if b.OpsPerSec < floor {
			return fmt.Errorf("%s: %s runs at %.4g ops/sec, under the %.4g ops/sec floor",
				path, name, b.OpsPerSec, floor)
		}
		fmt.Printf("%s: %.4g ops/sec (>= %.4g floor)\n", name, b.OpsPerSec, floor)
	}
	for _, p := range pairSpeedups {
		base, ok := current[p.a]
		if !ok {
			return fmt.Errorf("%s: -min-pair-speedup %s: no such benchmark", path, p.a)
		}
		fast, ok := current[p.b]
		if !ok {
			return fmt.Errorf("%s: -min-pair-speedup %s: no such benchmark", path, p.b)
		}
		if base.NsPerOp <= 0 || fast.NsPerOp <= 0 {
			return fmt.Errorf("%s: -min-pair-speedup %s:%s: entry has no timing data", path, p.a, p.b)
		}
		got := base.NsPerOp / fast.NsPerOp
		if got < p.factor {
			return fmt.Errorf("%s: %s is %.2fx faster than %s (%.4g ns/op vs %.4g ns/op), want >= %.2fx",
				path, p.b, got, p.a, fast.NsPerOp, base.NsPerOp, p.factor)
		}
		fmt.Printf("%s: %.2fx faster than %s (>= %.2fx required)\n", p.b, got, p.a, p.factor)
	}
	for _, p := range pairRatios {
		a, ok := current[p.a]
		if !ok {
			return fmt.Errorf("%s: -max-pair-ratio %s: no such benchmark", path, p.a)
		}
		b, ok := current[p.b]
		if !ok {
			return fmt.Errorf("%s: -max-pair-ratio %s: no such benchmark", path, p.b)
		}
		if a.NsPerOp <= 0 || b.NsPerOp <= 0 {
			return fmt.Errorf("%s: -max-pair-ratio %s:%s: entry has no timing data", path, p.a, p.b)
		}
		got := b.NsPerOp / a.NsPerOp
		if got > p.factor {
			return fmt.Errorf("%s: %s runs at %.2fx of %s (%.4g ns/op vs %.4g ns/op), over the %.2fx bound",
				path, p.b, got, p.a, b.NsPerOp, a.NsPerOp, p.factor)
		}
		fmt.Printf("%s: %.2fx of %s (<= %.2fx bound)\n", p.b, got, p.a, p.factor)
	}
	return nil
}

// delta formats the relative change from old to new, negative = faster
// or fewer.
func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "±0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}
