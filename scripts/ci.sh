#!/bin/sh
# Tier-1 gate: everything a change must pass before it lands.
# Usage: scripts/ci.sh
#
# Runs, in order: vet, build, the full test suite, and the race
# detector over the whole module. Benchmarks are not part of the gate
# (run `go test -bench=. -benchmem` for those); the golden-ruling test
# in internal/scenario pins the engine's Table 1 output.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "tier-1 gate: PASS"
