#!/bin/sh
# Tier-1 gate: everything a change must pass before it lands.
# Usage: scripts/ci.sh
#
# Runs, in order: gofmt, vet, build, the full test suite, the race
# detector over the whole module, and a short-mode smoke run of both
# experiment commands on the parallel sweep path (-smoke -workers 2).
# The sharded parallel engine gets its own gates: both experiment
# commands run their -partitions series under the race detector, the
# emitted JSON is byte-compared across partition counts (the
# conservative-lookahead engine must be exactly deterministic), and the
# committed BENCH_netsim.json is checked against a partition-speedup
# pair gate — 3x when the file was produced on 8+ cores, a 1.5x
# overhead bound otherwise.
# The audit ledger gets its own gates: the adversarial tamper tests
# rerun under -race, a casefile export/verify-ledger happy-path smoke,
# a corrupt-one-byte smoke that must exit nonzero, and benchcheck
# budgets pinning ledger append to <= 1000 ns/op and 0 allocs/op.
# The lawgated ruling service gets a live smoke: serve on an ephemeral
# port, run the full conformance probe (every endpoint plus the
# deliberate 4xx paths, including the byte-identity assertion on the
# hand-encoded hot-path responses), then SIGTERM and require a graceful
# exit 0 with final ledger checkpoints sealed; a -short chaos bench
# proves the loadgen schedule completes with every request accounted,
# and the committed BENCH_server.json is gated on latency budgets and a
# rulings/sec floor.
# The wire codec gets its own gates: a short differential fuzz run
# against encoding/json, a bench smoke pinning encode and decode to 0
# allocs/op, and pair gates on the committed BENCH_wire.json proving
# the codec's speedup over stdlib; the committed BENCH_ledger.json
# additionally proves AppendBatch amortizes at least 2x over looped
# Append.
# Full benchmarks are not part of the gate (run `scripts/bench.sh` for
# those), but a -short bench smoke proves the bench tooling itself
# still runs and emits parseable JSON; the golden-ruling test in
# internal/scenario pins the engine's Table 1 output, and the
# golden-ledger-root test in internal/investigation pins the ledger
# encoding the same way.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== smoke: p2phunt -smoke -workers 2"
go run ./cmd/p2phunt -smoke -workers 2 >/dev/null

echo "== smoke: tracewatermark -smoke -workers 2"
go run ./cmd/tracewatermark -smoke -workers 2 >/dev/null

echo "== smoke (degraded substrate, race detector): p2phunt -smoke -faults lossy"
go run -race ./cmd/p2phunt -smoke -faults lossy -workers 2 >/dev/null

echo "== smoke (degraded substrate, race detector): tracewatermark -smoke -faults lossy"
go run -race ./cmd/tracewatermark -smoke -faults lossy -workers 2 >/dev/null

echo "== smoke (sharded engine, race detector): p2phunt -smoke -partitions 4"
go run -race ./cmd/p2phunt -smoke -partitions 4 -workers 2 >/dev/null

echo "== smoke (sharded engine, race detector): tracewatermark -smoke -partitions 3"
go run -race ./cmd/tracewatermark -smoke -partitions 3 -workers 2 >/dev/null

echo "== determinism: lossy smoke JSON byte-identical at -workers 1 and -workers 4"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/p2phunt -smoke -faults lossy -json -workers 1 >"$tmpdir/p2p-w1.json"
go run ./cmd/p2phunt -smoke -faults lossy -json -workers 4 >"$tmpdir/p2p-w4.json"
cmp "$tmpdir/p2p-w1.json" "$tmpdir/p2p-w4.json"
go run ./cmd/tracewatermark -smoke -faults lossy -json -workers 1 >"$tmpdir/wm-w1.json"
go run ./cmd/tracewatermark -smoke -faults lossy -json -workers 4 >"$tmpdir/wm-w4.json"
cmp "$tmpdir/wm-w1.json" "$tmpdir/wm-w4.json"

echo "== determinism: sharded smoke JSON byte-identical across partition counts"
go run ./cmd/p2phunt -smoke -json -partitions 1 >"$tmpdir/p2p-p1.json"
go run ./cmd/p2phunt -smoke -json -partitions 4 >"$tmpdir/p2p-p4.json"
cmp "$tmpdir/p2p-p1.json" "$tmpdir/p2p-p4.json"
go run ./cmd/tracewatermark -smoke -json -partitions 1 >"$tmpdir/wm-p1.json"
go run ./cmd/tracewatermark -smoke -json -partitions 3 >"$tmpdir/wm-p3.json"
cmp "$tmpdir/wm-p1.json" "$tmpdir/wm-p3.json"

echo "== determinism: smoke JSON byte-identical across two independent runs"
go run ./cmd/p2phunt -smoke -json >"$tmpdir/p2p-run1.json"
go run ./cmd/p2phunt -smoke -json >"$tmpdir/p2p-run2.json"
cmp "$tmpdir/p2p-run1.json" "$tmpdir/p2p-run2.json"
go run ./cmd/tracewatermark -smoke -json >"$tmpdir/wm-run1.json"
go run ./cmd/tracewatermark -smoke -json >"$tmpdir/wm-run2.json"
cmp "$tmpdir/wm-run1.json" "$tmpdir/wm-run2.json"

echo "== delta equivalence sweep under the race detector"
go test -race -run 'TestDeltaMatchesFullEvaluate|TestDeltaRoundTrip|TestBatchDeltaChainWorkersIdentity' ./internal/legal

echo "== smoke: evaluate -deltas rules a JSONL event stream"
cat >"$tmpdir/events.jsonl" <<'JSONL'
{"name":"ci-stream","actor":1,"timing":1,"data":2,"source":3}
{"fields":[{"field":"encrypted","new":1}]}
{"fields":[{"field":"data","old":2,"new":1}]}
JSONL
go run ./cmd/evaluate -deltas "$tmpdir/events.jsonl" >"$tmpdir/deltas.out"
grep -q '^base: required' "$tmpdir/deltas.out"
grep -q '^2 events, 1 ruling changes$' "$tmpdir/deltas.out"

echo "== wire codec: differential fuzz vs encoding/json (10s smoke)"
go test -run '^FuzzWireRoundTrip$' -fuzz '^FuzzWireRoundTrip$' -fuzztime 10s ./internal/wire

echo "== ledger tamper detection under the race detector"
go test -race -run 'TestTamper|TestCustodyTamperDetected|TestVerifyAgainstCheckpoint' \
	./internal/ledger ./internal/evidence

echo "== smoke: casefile -export-ledger + verify-ledger happy path"
go run ./cmd/casefile -flow kyllo -export-ledger "$tmpdir/kyllo.ledger" >/dev/null
go run ./cmd/casefile verify-ledger "$tmpdir/kyllo.ledger"

echo "== smoke: verify-ledger detects a corrupted export (expect nonzero exit)"
# Flip one byte mid-file: past the header, inside a sealed record body.
cp "$tmpdir/kyllo.ledger" "$tmpdir/kyllo-corrupt.ledger"
orig=$(dd if="$tmpdir/kyllo-corrupt.ledger" bs=1 skip=40 count=1 2>/dev/null | od -An -tu1 | tr -d ' ')
printf "\\$(printf '%03o' $(((orig + 1) % 256)))" |
	dd of="$tmpdir/kyllo-corrupt.ledger" bs=1 seek=40 conv=notrunc 2>/dev/null
if go run ./cmd/casefile verify-ledger "$tmpdir/kyllo-corrupt.ledger" 2>/dev/null; then
	echo "verify-ledger accepted a corrupted ledger" >&2
	exit 1
fi

echo "== smoke: lawgated serve -> probe -> SIGTERM graceful drain (expect exit 0)"
go build -o "$tmpdir/lawgated" ./cmd/lawgated
"$tmpdir/lawgated" -addr 127.0.0.1:0 -port-file "$tmpdir/lawgated.port" \
	-tenants default,lab 2>"$tmpdir/lawgated.log" &
lawgated_pid=$!
for _ in $(seq 1 100); do
	[ -s "$tmpdir/lawgated.port" ] && break
	sleep 0.1
done
[ -s "$tmpdir/lawgated.port" ] || {
	echo "lawgated never wrote its port file" >&2
	cat "$tmpdir/lawgated.log" >&2
	exit 1
}
"$tmpdir/lawgated" -probe "http://$(cat "$tmpdir/lawgated.port")" >/dev/null
kill -TERM "$lawgated_pid"
wait "$lawgated_pid" # set -e: a non-zero (non-graceful) exit fails the gate
grep -q 'drained clean' "$tmpdir/lawgated.log"
grep -q 'sealed final checkpoint' "$tmpdir/lawgated.log"

echo "== bench smoke: bench.sh -short emits valid BENCH JSON (netsim + legal + ledger)"
scripts/bench.sh -short -o "$tmpdir/bench.json"
go run ./scripts/benchcheck "$tmpdir/bench.json"
scripts/bench.sh -short -o "$tmpdir/bench_legal.json" legal
go run ./scripts/benchcheck "$tmpdir/bench_legal.json"
# The smoke proves the tooling; only the alloc budget is asserted on
# it. The 1000 ns budget is enforced below on the committed
# BENCH_ledger.json (median of 5 full runs) — a count=1 benchtime=100x
# smoke sample is too noisy to hold a latency budget against.
scripts/bench.sh -short -o "$tmpdir/bench_ledger.json" ledger
go run ./scripts/benchcheck \
	-max-allocs 'BenchmarkLedgerAppend=0' \
	"$tmpdir/bench_ledger.json"

scripts/bench.sh -short -o "$tmpdir/bench_wire.json" wire
go run ./scripts/benchcheck \
	-max-allocs 'BenchmarkWireEncode=0' \
	-max-allocs 'BenchmarkWireDecode=0' \
	"$tmpdir/bench_wire.json"

echo "== bench smoke: chaos bench completes with every request accounted (server)"
scripts/bench.sh -short -o "$tmpdir/bench_server.json" server
go run ./scripts/benchcheck "$tmpdir/bench_server.json"

echo "== benchcheck: committed BENCH files still valid"
# The sharded-engine speedup claim is machine-relative, so the gate
# reads the core count recorded in the committed BENCH_netsim.json.
# With 8+ cores the 3x partition-speedup pair gate arms; on smaller
# machines parallelism cannot be demonstrated, but the sharded run must
# still beat (or at worst match, 1.5x bound) the single-partition run —
# the per-partition heaps are shallower, so sharding pays even serially.
cores=$(sed -n 's/^  "cores": \([0-9]*\),$/\1/p' BENCH_netsim.json)
if [ "${cores:-0}" -ge 8 ]; then
	go run ./scripts/benchcheck \
		-min-pair-speedup 'BenchmarkShardedRun/comp-p1:BenchmarkShardedRun/comp-p8:3.0' \
		BENCH_netsim.json
else
	go run ./scripts/benchcheck \
		-max-pair-ratio 'BenchmarkShardedRun/comp-p1:BenchmarkShardedRun/comp-p8:1.5' \
		BENCH_netsim.json
fi
go run ./scripts/benchcheck \
	-min-speedup 'BenchmarkRulingsPerSec/warm=2.0' \
	-min-speedup 'BenchmarkEvaluateDelta/delta/scalar2=3.0' \
	BENCH_legal.json
# The batched append must keep amortizing: at least 2x cheaper per
# record than sealing the same drafts through looped single appends.
go run ./scripts/benchcheck \
	-min-speedup 'BenchmarkLedgerAppend=4.0' \
	-max-ns 'BenchmarkLedgerAppend=1000' \
	-max-allocs 'BenchmarkLedgerAppend=0' \
	-max-allocs 'BenchmarkLedgerAppendBatch=0' \
	-min-pair-speedup 'BenchmarkLedgerAppendLooped:BenchmarkLedgerAppendBatch:2.0' \
	BENCH_ledger.json
# The hand-rolled codec must stay allocation-free and keep beating the
# encoding/json implementations it mirrors byte-for-byte.
go run ./scripts/benchcheck \
	-max-allocs 'BenchmarkWireEncode=0' \
	-max-allocs 'BenchmarkWireDecode=0' \
	-min-pair-speedup 'BenchmarkWireEncodeStdlib:BenchmarkWireEncode:2.0' \
	-min-pair-speedup 'BenchmarkWireDecodeStdlib:BenchmarkWireDecode:3.0' \
	BENCH_wire.json
# p50 carries the real latency budget; p99 is lenient because the
# chaos schedule deliberately kills keep-alive connections (413s and
# recovered panics force closes), so tail evaluates pay reconnect cost.
go run ./scripts/benchcheck \
	-max-ns 'ServerEvaluateP50=5000000' \
	-max-ns 'ServerEvaluateP99=200000000' \
	-min-ops 'ServerRulingsPerSec=1000' \
	BENCH_server.json

echo "tier-1 gate: PASS"
