#!/bin/sh
# Regenerates every artifact in EXPERIMENTS.md into out/.
# Usage: scripts/regenerate.sh [trials]
#
# The E2/E3 sweeps run their trials in parallel on all CPUs (the shared
# experiment harness); results depend only on -seed, not on -workers.
set -eu
trials="${1:-5}"
out=out
mkdir -p "$out"
echo "E1: Table 1 ..."
go run ./cmd/scenariotable > "$out/table1.txt"
go run ./cmd/scenariotable -json > "$out/table1.json"
echo "E2: P2P timing attack sweep ..."
go run ./cmd/p2phunt -trials "$trials" > "$out/p2phunt.txt"
go run ./cmd/p2phunt -trials "$trials" -json > "$out/p2phunt.json"
echo "E3: watermark sweep (slow) ..."
go run ./cmd/tracewatermark -trials "$trials" > "$out/tracewatermark.txt"
go run ./cmd/tracewatermark -trials "$trials" -json > "$out/tracewatermark.json"
echo "E4/E6: casefile flows ..."
go run ./cmd/casefile > "$out/casefile.txt"
echo "advisor ..."
go run ./cmd/advise > "$out/advise.txt"
echo "done: $out/"
