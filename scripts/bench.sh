#!/bin/sh
# Tracked benchmark baselines for the hot paths.
# Usage: scripts/bench.sh [-count N] [-short] [-o FILE] [netsim|legal|ledger|server|wire]
#
# The default `netsim` target runs the internal/netsim micro-benchmarks
# (scheduler step, send paths, neighbor lookup, heap churn), the
# BenchmarkSweepRunner macro-bench, and the BenchmarkShardedRun
# parallel-engine macro-bench (a 100k-node composite topology run at 1
# and 8 partitions, reporting events/sec and nodes/sec), and writes to
# BENCH_netsim.json with the machine's core count recorded — CI arms
# the 3x partition-speedup gate only when the recorded run had enough
# cores to make the claim meaningful.
# The `legal` target runs the BenchmarkRulingsPerSec engine-throughput
# family (cold/warm/batch/batch-dup) plus the delta-path families
# (BenchmarkEvaluateDelta, BenchmarkBatchDeltaChain) and writes to
# BENCH_legal.json. The `ledger` target runs the audit-ledger family
# (append, batched append and its looped-append pair baseline,
# checkpointed batches, proof generation, proof verification, full
# chain verification) and writes to BENCH_ledger.json. The `wire`
# target runs the zero-alloc wire-codec encode/decode benchmarks next
# to their encoding/json equivalents and writes to BENCH_wire.json —
# CI pins both hot-path benchmarks to 0 allocs/op. The `server`
# target runs the lawgated chaos bench (internal/server/loadgen driving
# a live in-process server over TCP through bursts, malformed JSON,
# oversized bodies, slow-loris connections, poisoned evaluations, and
# mid-run doctrine hot swaps), asserts every request ended in a
# deliberate status with no goroutine leak, and writes the observed
# latency percentiles and rulings/sec to BENCH_server.json; lawgated
# emits the report JSON itself, with a direct Engine.Evaluate baseline
# measured in the same run.
#
# Each benchmark runs -count times and the per-benchmark MEDIANS of
# ns/op, B/op, allocs/op — plus events/sec and nodes/sec where a
# benchmark reports them — are written to FILE as JSON. When the
# target's baseline file (scripts/bench_baseline.json,
# scripts/bench_baseline_legal.json, or
# scripts/bench_baseline_ledger.json) exists its contents are embedded
# under "baseline" so the checked-in artifact carries its own
# before/after comparison. -short runs one fast iteration of everything
# — the CI smoke that proves the script and its output format still
# work.
set -eu
cd "$(dirname "$0")/.."

count=5
out=
short=0
target=netsim
while [ $# -gt 0 ]; do
	case "$1" in
	-count)
		count=$2
		shift 2
		;;
	-short)
		short=1
		shift
		;;
	-o)
		out=$2
		shift 2
		;;
	netsim | legal | ledger | server | wire)
		target=$1
		shift
		;;
	*)
		echo "usage: scripts/bench.sh [-count N] [-short] [-o FILE] [netsim|legal|ledger|server|wire]" >&2
		exit 2
		;;
	esac
done

benchtime=1s
shardnodes=100000
if [ "$short" = 1 ]; then
	count=1
	benchtime=100x
	shardnodes=2000
fi
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

# The server target is self-contained: lawgated runs the chaos schedule
# and writes the report JSON (with its in-run baseline) itself.
if [ "$target" = server ]; then
	[ -n "$out" ] || out=BENCH_server.json
	duration=2s
	[ "$short" = 1 ] && duration=400ms
	echo "== lawgated chaos bench (duration=$duration)" >&2
	go run ./cmd/lawgated -bench -bench-duration "$duration" -o "$out"
	echo "wrote $out" >&2
	exit 0
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

case "$target" in
netsim)
	[ -n "$out" ] || out=BENCH_netsim.json
	baseline=scripts/bench_baseline.json
	echo "== netsim micro-benchmarks (count=$count, benchtime=$benchtime)" >&2
	go test -run '^$' \
		-bench '^(BenchmarkSimulatorStep|BenchmarkSimulatorStepDeep|BenchmarkSend|BenchmarkSendTapped|BenchmarkSendFaulty|BenchmarkNeighbors|BenchmarkHeapChurn)$' \
		-benchmem -benchtime "$benchtime" -count "$count" ./internal/netsim |
		tee -a "$tmp" >&2

	echo "== sweep macro-benchmark (count=$count, benchtime=1x)" >&2
	go test -run '^$' -bench '^BenchmarkSweepRunner$' \
		-benchmem -benchtime 1x -count "$count" . |
		tee -a "$tmp" >&2

	echo "== sharded-engine macro-benchmark (count=$count, benchtime=1x, nodes=$shardnodes)" >&2
	go test -run '^$' -bench '^BenchmarkShardedRun$' \
		-benchmem -benchtime 1x -count "$count" ./internal/netsim \
		-args -shard-bench-nodes "$shardnodes" |
		tee -a "$tmp" >&2
	;;
legal)
	[ -n "$out" ] || out=BENCH_legal.json
	baseline=scripts/bench_baseline_legal.json
	echo "== legal engine throughput (count=$count, benchtime=$benchtime)" >&2
	go test -run '^$' -bench '^(BenchmarkRulingsPerSec|BenchmarkEvaluateDelta|BenchmarkBatchDeltaChain)$' \
		-benchmem -benchtime "$benchtime" -count "$count" ./internal/legal |
		tee -a "$tmp" >&2
	;;
ledger)
	[ -n "$out" ] || out=BENCH_ledger.json
	baseline=scripts/bench_baseline_ledger.json
	echo "== audit-ledger benchmarks (count=$count, benchtime=$benchtime)" >&2
	go test -run '^$' \
		-bench '^(BenchmarkLedgerAppend|BenchmarkLedgerAppendBatch|BenchmarkLedgerAppendLooped|BenchmarkLedgerAppendBatchCheckpointed|BenchmarkLedgerProof|BenchmarkLedgerVerifyProof|BenchmarkLedgerVerify)$' \
		-benchmem -benchtime "$benchtime" -count "$count" ./internal/ledger |
		tee -a "$tmp" >&2
	;;
wire)
	[ -n "$out" ] || out=BENCH_wire.json
	baseline=
	echo "== wire-codec benchmarks (count=$count, benchtime=$benchtime)" >&2
	go test -run '^$' \
		-bench '^(BenchmarkWireEncode|BenchmarkWireEncodeStdlib|BenchmarkWireDecode|BenchmarkWireDecodeStdlib)$' \
		-benchmem -benchtime "$benchtime" -count "$count" ./internal/wire |
		tee -a "$tmp" >&2
	;;
esac

# aggregate: median of each metric per benchmark name (GOMAXPROCS
# suffix stripped so results compare across machines).
aggregate() {
	awk '
/^Benchmark/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns[name, ++nns[name]] = $(i - 1)
		else if ($i == "B/op") by[name, ++nby[name]] = $(i - 1)
		else if ($i == "allocs/op") al[name, ++nal[name]] = $(i - 1)
		else if ($i == "events/sec") ev[name, ++nev[name]] = $(i - 1)
		else if ($i == "nodes/sec") nd[name, ++nnd[name]] = $(i - 1)
	}
	if (!(name in seen)) { seen[name] = 1; order[++n] = name }
}
function median(arr, cnt, name,    i, j, t, v, m) {
	m = cnt[name]
	for (i = 1; i <= m; i++) v[i] = arr[name, i] + 0
	for (i = 2; i <= m; i++) {
		t = v[i]
		for (j = i - 1; j >= 1 && v[j] > t; j--) v[j + 1] = v[j]
		v[j + 1] = t
	}
	if (m % 2) return v[(m + 1) / 2]
	return (v[m / 2] + v[m / 2 + 1]) / 2
}
END {
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= n; i++) {
		name = order[i]
		line = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %.10g, \"bytes_per_op\": %.10g, \"allocs_per_op\": %.10g", \
			name, median(ns, nns, name), median(by, nby, name), median(al, nal, name))
		if (nev[name]) line = line sprintf(", \"events_per_sec\": %.10g", median(ev, nev, name))
		if (nnd[name]) line = line sprintf(", \"nodes_per_sec\": %.10g", median(nd, nnd, name))
		printf "%s}%s\n", line, (i < n ? "," : "")
	}
	printf "  ]"
}' "$1"
}

{
	printf '{\n'
	printf '  "schema": "lawgate-bench/v1",\n'
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cores": %s,\n' "$cores"
	printf '  "count": %s,\n' "$count"
	aggregate "$tmp"
	if [ -f "$baseline" ]; then
		printf ',\n  "baseline": '
		cat "$baseline"
	fi
	printf '\n}\n'
} >"$out"

echo "wrote $out" >&2
