// Command evaluate runs an arbitrary investigative action, described by
// flags, through the lawgate compliance engine, printing the required
// process, the governing regime, the rationale chain, and — when the
// action needs process — the advisor's cheaper redesigns.
//
// Usage:
//
//	evaluate -actor government -timing realtime -data content -source isp
//	evaluate -actor provider -timing realtime -data addressing -source own
//	evaluate -actor government -timing stored -data device -source seized -beyond
//	evaluate -batch actions.json   (or "-batch -" to read stdin)
//
// Batch mode reads a JSON array of legal.Action values, evaluates them
// concurrently through Engine.EvaluateBatch with a ruling cache, and
// emits one JSON ruling view per action, in input order.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lawgate/internal/legal"
	"lawgate/internal/report"
)

var actors = map[string]legal.Actor{
	"government": legal.ActorGovernment,
	"directed":   legal.ActorGovernmentDirected,
	"private":    legal.ActorPrivate,
	"provider":   legal.ActorProvider,
}

var timings = map[string]legal.Timing{
	"realtime": legal.TimingRealTime,
	"stored":   legal.TimingStored,
}

var dataClasses = map[string]legal.DataClass{
	"content":    legal.DataContent,
	"addressing": legal.DataAddressing,
	"subscriber": legal.DataBasicSubscriber,
	"records":    legal.DataTransactionalRecords,
	"public":     legal.DataPublic,
	"device":     legal.DataDeviceContents,
}

var sources = map[string]legal.Source{
	"own":      legal.SourceOwnNetwork,
	"wireless": legal.SourceWirelessBroadcast,
	"isp":      legal.SourceThirdPartyNetwork,
	"held":     legal.SourceProviderStored,
	"service":  legal.SourcePublicService,
	"seized":   legal.SourceSeizedDevice,
	"remote":   legal.SourceRemoteAccount,
	"victim":   legal.SourceVictimSystem,
	"target":   legal.SourceTargetDevice,
}

var consents = map[string]legal.ConsentScope{
	"":           0,
	"owner":      legal.ConsentOwnData,
	"couser":     legal.ConsentCoUserSharedSpace,
	"spouse":     legal.ConsentSpouse,
	"parent":     legal.ConsentParentMinor,
	"employer":   legal.ConsentEmployerPrivate,
	"tos":        legal.ConsentProviderToS,
	"party":      legal.ConsentCommunicationParty,
	"trespasser": legal.ConsentVictimTrespasser,
}

func main() {
	var (
		actor   = flag.String("actor", "government", "actor: government, directed, private, provider")
		timing  = flag.String("timing", "realtime", "timing: realtime, stored")
		data    = flag.String("data", "content", "data: content, addressing, subscriber, records, public, device")
		source  = flag.String("source", "isp", "source: own, wireless, isp, held, service, seized, remote, victim, target")
		consent = flag.String("consent", "", "consent scope: owner, couser, spouse, parent, employer, tos, party, trespasser")
		beyond  = flag.Bool("beyond", false, "examination goes beyond the original authority (Crist)")
		relay   = flag.Bool("relay", false, "intercepts third-party communications as a relay operator")
		public  = flag.Bool("public-provider", true, "the holding provider serves the public")
		ecs     = flag.Bool("ecs", true, "the holding provider is an ECS/RCS for the data")
		asJSON  = flag.Bool("json", false, "emit the ruling as JSON")
		batch   = flag.String("batch", "", "evaluate a JSON array of actions from FILE (\"-\" = stdin)")
	)
	flag.Parse()
	var err error
	if *batch != "" {
		err = runBatch(*batch)
	} else {
		err = run(*actor, *timing, *data, *source, *consent, *beyond, *relay, *public, *ecs, *asJSON)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func runBatch(path string) error {
	var src io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	var actions []legal.Action
	if err := json.NewDecoder(src).Decode(&actions); err != nil {
		return fmt.Errorf("decoding actions: %w", err)
	}
	engine := legal.NewEngine(legal.WithRulingCache(0))
	rulings, err := engine.EvaluateBatch(context.Background(), actions)
	if err != nil {
		return err
	}
	views := make([]report.RulingView, len(rulings))
	for i, r := range rulings {
		views[i] = report.FromRuling(r)
	}
	return report.WriteJSON(os.Stdout, views)
}

func run(actor, timing, data, source, consent string, beyond, relay, public, ecs, asJSON bool) error {
	a := legal.Action{Name: "cli-action"}
	var ok bool
	if a.Actor, ok = actors[actor]; !ok {
		return fmt.Errorf("unknown actor %q", actor)
	}
	if a.Timing, ok = timings[timing]; !ok {
		return fmt.Errorf("unknown timing %q", timing)
	}
	if a.Data, ok = dataClasses[data]; !ok {
		return fmt.Errorf("unknown data class %q", data)
	}
	if a.Source, ok = sources[source]; !ok {
		return fmt.Errorf("unknown source %q", source)
	}
	scope, ok := consents[consent]
	if !ok {
		return fmt.Errorf("unknown consent scope %q", consent)
	}
	if scope != 0 {
		a.Consent = &legal.Consent{Scope: scope}
	}
	a.SearchBeyondAuthority = beyond
	a.InterceptsThirdParty = relay
	a.ProviderPublic = public
	if a.Source == legal.SourceProviderStored {
		if ecs {
			a.ProviderRole = legal.ProviderECS
		} else {
			a.ProviderRole = legal.ProviderNone
		}
	}

	engine := legal.NewEngine()
	ruling, err := engine.Evaluate(a)
	if err != nil {
		return err
	}
	if asJSON {
		return report.WriteJSON(os.Stdout, report.FromRuling(ruling))
	}
	fmt.Printf("required: %s\nregime:   %s\n", ruling.Required, ruling.Regime)
	for _, reason := range ruling.Rationale {
		fmt.Printf("  · %s\n", reason)
	}
	for _, c := range ruling.Citations {
		fmt.Printf("  cite: %s\n", c.Title)
	}
	if ruling.NeedsProcess() {
		advice, err := engine.Advise(a)
		if err != nil {
			return err
		}
		if len(advice) > 0 {
			fmt.Println("\ncheaper redesigns (paper § V recommendation):")
			for _, ad := range advice {
				fmt.Printf("  -> %s: %s\n", ad.Ruling.Required, ad.Explanation)
			}
		}
	}
	return nil
}
