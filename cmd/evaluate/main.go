// Command evaluate runs an arbitrary investigative action, described by
// flags, through the lawgate compliance engine, printing the required
// process, the governing regime, the rationale chain, and — when the
// action needs process — the advisor's cheaper redesigns.
//
// Usage:
//
//	evaluate -actor government -timing realtime -data content -source isp
//	evaluate -actor provider -timing realtime -data addressing -source own
//	evaluate -actor government -timing stored -data device -source seized -beyond
//	evaluate -batch actions.json   (or "-batch -" to read stdin)
//
// Batch mode reads a JSON array of legal.Action values, evaluates them
// concurrently through Engine.EvaluateBatch with a ruling cache, and
// emits one JSON ruling view per action, in input order. With
// -engine-stats, the engine's cache and dispatch counters (hits,
// misses, evictions, rules scanned per walk) are printed to stderr
// after the batch.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lawgate/internal/legal"
	"lawgate/internal/report"
)

var actors = map[string]legal.Actor{
	"government": legal.ActorGovernment,
	"directed":   legal.ActorGovernmentDirected,
	"private":    legal.ActorPrivate,
	"provider":   legal.ActorProvider,
}

var timings = map[string]legal.Timing{
	"realtime": legal.TimingRealTime,
	"stored":   legal.TimingStored,
}

var dataClasses = map[string]legal.DataClass{
	"content":    legal.DataContent,
	"addressing": legal.DataAddressing,
	"subscriber": legal.DataBasicSubscriber,
	"records":    legal.DataTransactionalRecords,
	"public":     legal.DataPublic,
	"device":     legal.DataDeviceContents,
}

var sources = map[string]legal.Source{
	"own":      legal.SourceOwnNetwork,
	"wireless": legal.SourceWirelessBroadcast,
	"isp":      legal.SourceThirdPartyNetwork,
	"held":     legal.SourceProviderStored,
	"service":  legal.SourcePublicService,
	"seized":   legal.SourceSeizedDevice,
	"remote":   legal.SourceRemoteAccount,
	"victim":   legal.SourceVictimSystem,
	"target":   legal.SourceTargetDevice,
}

var consents = map[string]legal.ConsentScope{
	"":           0,
	"owner":      legal.ConsentOwnData,
	"couser":     legal.ConsentCoUserSharedSpace,
	"spouse":     legal.ConsentSpouse,
	"parent":     legal.ConsentParentMinor,
	"employer":   legal.ConsentEmployerPrivate,
	"tos":        legal.ConsentProviderToS,
	"party":      legal.ConsentCommunicationParty,
	"trespasser": legal.ConsentVictimTrespasser,
}

func main() {
	var (
		actor   = flag.String("actor", "government", "actor: government, directed, private, provider")
		timing  = flag.String("timing", "realtime", "timing: realtime, stored")
		data    = flag.String("data", "content", "data: content, addressing, subscriber, records, public, device")
		source  = flag.String("source", "isp", "source: own, wireless, isp, held, service, seized, remote, victim, target")
		consent = flag.String("consent", "", "consent scope: owner, couser, spouse, parent, employer, tos, party, trespasser")
		beyond  = flag.Bool("beyond", false, "examination goes beyond the original authority (Crist)")
		relay   = flag.Bool("relay", false, "intercepts third-party communications as a relay operator")
		public  = flag.Bool("public-provider", true, "the holding provider serves the public")
		ecs     = flag.Bool("ecs", true, "the holding provider is an ECS/RCS for the data")
		asJSON  = flag.Bool("json", false, "emit the ruling as JSON")
		batch   = flag.String("batch", "", "evaluate a JSON array of actions from FILE (\"-\" = stdin)")
		deltas  = flag.String("deltas", "", "stream a JSONL file from FILE (\"-\" = stdin): first line a base action, then action deltas; rulings print only when they change")
		stats   = flag.Bool("engine-stats", false, "after a batch or delta run, print engine cache/dispatch counters to stderr")
	)
	flag.Parse()
	var err error
	if *deltas != "" {
		err = runDeltas(*deltas, *stats)
	} else if *batch != "" {
		err = runBatch(*batch, *stats)
	} else {
		err = run(*actor, *timing, *data, *source, *consent, *beyond, *relay, *public, *ecs, *asJSON)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

// printEngineStats renders the -engine-stats report: cache
// effectiveness and dispatch selectivity, written to stderr so the
// ruling JSON on stdout stays machine-readable.
func printEngineStats(w io.Writer, s legal.EngineStats) {
	fmt.Fprintf(w, "engine stats:\n")
	fmt.Fprintf(w, "  evaluations:     %d (+%d batch slots deduplicated, +%d delta-chained)\n",
		s.Evaluations, s.BatchDeduped, s.BatchDeltaChained)
	if s.DeltaEvaluations > 0 {
		fmt.Fprintf(w, "  delta evals:     %d (%d short-circuited)\n", s.DeltaEvaluations, s.DeltaShortCircuits)
	}
	fmt.Fprintf(w, "  cache:           %d hits / %d misses / %d evictions (%d rulings memoized)\n",
		s.CacheHits, s.CacheMisses, s.CacheEvictions, s.CacheSize)
	fmt.Fprintf(w, "  invalid actions: %d\n", s.InvalidActions)
	evaluated := s.Evaluations - s.InvalidActions
	if s.CacheMisses > 0 {
		evaluated = s.CacheMisses - s.InvalidActions
	}
	if evaluated > 0 {
		fmt.Fprintf(w, "  rules scanned:   %d (avg %.1f of %d per table walk)\n",
			s.RulesScanned, float64(s.RulesScanned)/float64(evaluated), s.RuleTableSize)
	} else {
		fmt.Fprintf(w, "  rules scanned:   %d (table size %d)\n", s.RulesScanned, s.RuleTableSize)
	}
}

func runBatch(path string, stats bool) error {
	var src io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	var actions []legal.Action
	if err := json.NewDecoder(src).Decode(&actions); err != nil {
		return fmt.Errorf("decoding actions: %w", err)
	}
	opts := []legal.EngineOption{legal.WithRulingCache(0)}
	if stats {
		opts = append(opts, legal.WithEngineStats())
	}
	engine := legal.NewEngine(opts...)
	rulings, err := engine.EvaluateBatch(context.Background(), actions)
	if err != nil {
		return err
	}
	views := make([]report.RulingView, len(rulings))
	for i, r := range rulings {
		views[i] = report.FromRuling(r)
	}
	if err := report.WriteJSON(os.Stdout, views); err != nil {
		return err
	}
	if stats {
		printEngineStats(os.Stderr, engine.Stats())
	}
	return nil
}

// runDeltas is the streaming mode: the first JSONL line is the base
// legal.Action, every further line a legal.ActionDelta mutating it. The
// base ruling always prints; after that a line prints only when an
// event moved the required process or governing regime — the monitor
// shape, driven from a file. Quiet events are counted, not printed.
func runDeltas(path string, stats bool) error {
	var src io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	opts := []legal.EngineOption{legal.WithRulingCache(0)}
	if stats {
		opts = append(opts, legal.WithEngineStats())
	}
	engine := legal.NewEngine(opts...)

	var (
		ruling  legal.Ruling
		started bool
		event   int
		changed int
	)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if !started {
			var base legal.Action
			if err := json.Unmarshal(line, &base); err != nil {
				return fmt.Errorf("decoding base action: %w", err)
			}
			r, err := engine.Evaluate(base)
			if err != nil {
				return err
			}
			ruling = r
			started = true
			fmt.Printf("base: required %s, regime %s\n", ruling.Required, ruling.Regime)
			continue
		}
		event++
		var d legal.ActionDelta
		if err := json.Unmarshal(line, &d); err != nil {
			return fmt.Errorf("decoding delta %d: %w", event, err)
		}
		next, err := engine.EvaluateDelta(&ruling, d)
		if err != nil {
			return fmt.Errorf("event %d: %w", event, err)
		}
		if next.Required != ruling.Required || next.Regime != ruling.Regime {
			changed++
			fmt.Printf("event %d %s: required %s, regime %s\n",
				event, d.Encoding(), next.Required, next.Regime)
		}
		ruling = next
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !started {
		return fmt.Errorf("delta stream empty: want a base action on the first line")
	}
	fmt.Printf("%d events, %d ruling changes\n", event, changed)
	if stats {
		printEngineStats(os.Stderr, engine.Stats())
	}
	return nil
}

func run(actor, timing, data, source, consent string, beyond, relay, public, ecs, asJSON bool) error {
	a := legal.Action{Name: "cli-action"}
	var ok bool
	if a.Actor, ok = actors[actor]; !ok {
		return fmt.Errorf("unknown actor %q", actor)
	}
	if a.Timing, ok = timings[timing]; !ok {
		return fmt.Errorf("unknown timing %q", timing)
	}
	if a.Data, ok = dataClasses[data]; !ok {
		return fmt.Errorf("unknown data class %q", data)
	}
	if a.Source, ok = sources[source]; !ok {
		return fmt.Errorf("unknown source %q", source)
	}
	scope, ok := consents[consent]
	if !ok {
		return fmt.Errorf("unknown consent scope %q", consent)
	}
	if scope != 0 {
		a.Consent = &legal.Consent{Scope: scope}
	}
	a.SearchBeyondAuthority = beyond
	a.InterceptsThirdParty = relay
	a.ProviderPublic = public
	if a.Source == legal.SourceProviderStored {
		if ecs {
			a.ProviderRole = legal.ProviderECS
		} else {
			a.ProviderRole = legal.ProviderNone
		}
	}

	engine := legal.NewEngine()
	ruling, err := engine.Evaluate(a)
	if err != nil {
		return err
	}
	if asJSON {
		return report.WriteJSON(os.Stdout, report.FromRuling(ruling))
	}
	fmt.Printf("required: %s\nregime:   %s\n", ruling.Required, ruling.Regime)
	for _, reason := range ruling.Rationale {
		fmt.Printf("  · %s\n", reason)
	}
	for _, c := range ruling.Citations {
		fmt.Printf("  cite: %s\n", c.Title)
	}
	if ruling.NeedsProcess() {
		advice, err := engine.Advise(a)
		if err != nil {
			return err
		}
		if len(advice) > 0 {
			fmt.Println("\ncheaper redesigns (paper § V recommendation):")
			for _, ad := range advice {
				fmt.Printf("  -> %s: %s\n", ad.Ruling.Required, ad.Explanation)
			}
		}
	}
	return nil
}
