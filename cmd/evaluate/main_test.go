package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lawgate/internal/legal"
)

func TestRunCombos(t *testing.T) {
	tests := []struct {
		name                       string
		actor, timing, data, src   string
		consent                    string
		beyond, relay, public, ecs bool
	}{
		{name: "wiretap", actor: "government", timing: "realtime", data: "content", src: "isp", public: true, ecs: true},
		{name: "pen", actor: "government", timing: "realtime", data: "addressing", src: "isp", public: true, ecs: true},
		{name: "provider", actor: "provider", timing: "realtime", data: "content", src: "own", public: true, ecs: true},
		{name: "crist", actor: "government", timing: "stored", data: "device", src: "seized", beyond: true, public: true, ecs: true},
		{name: "sca", actor: "government", timing: "stored", data: "content", src: "held", public: true, ecs: true},
		{name: "consent", actor: "government", timing: "realtime", data: "content", src: "victim", consent: "trespasser", public: true, ecs: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.actor, tt.timing, tt.data, tt.src, tt.consent, tt.beyond, tt.relay, tt.public, tt.ecs, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunJSON(t *testing.T) {
	if err := run("government", "realtime", "content", "isp", "", false, false, true, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	bad := [][5]string{
		{"alien", "realtime", "content", "isp", ""},
		{"government", "never", "content", "isp", ""},
		{"government", "realtime", "vibes", "isp", ""},
		{"government", "realtime", "content", "moon", ""},
		{"government", "realtime", "content", "isp", "nobody"},
	}
	for _, b := range bad {
		if err := run(b[0], b[1], b[2], b[3], b[4], false, false, true, true, false); err == nil {
			t.Errorf("combo %v must fail", b)
		}
	}
}

func TestRunDeltas(t *testing.T) {
	base := legal.Action{
		Name:   "stream-base",
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingRealTime,
		Data:   legal.DataAddressing,
		Source: legal.SourceThirdPartyNetwork,
	}
	// Event 1 is quiet (encrypting the channel does not move an
	// addressing tap); event 2 escalates to content and must print.
	encrypted := base
	encrypted.Encrypted = true
	escalated := encrypted
	escalated.Data = legal.DataContent

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, v := range []interface{}{base, legal.Diff(&base, &encrypted), legal.Diff(&encrypted, &escalated)} {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	runErr := runDeltas(path, false)
	os.Stdout = orig
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("runDeltas: %v", runErr)
	}

	got := string(out)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("output lines = %d, want 3 (base, one change, summary):\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[0], "base: required court order") {
		t.Errorf("base line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "event 2 delta{data:") || !strings.Contains(lines[1], "wiretap order") {
		t.Errorf("change line = %q", lines[1])
	}
	if lines[2] != "2 events, 1 ruling changes" {
		t.Errorf("summary line = %q", lines[2])
	}
}

func TestRunDeltasErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDeltas(empty, false); err == nil {
		t.Error("empty stream must fail")
	}
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDeltas(bad, false); err == nil {
		t.Error("malformed base action must fail")
	}
	if err := runDeltas(filepath.Join(dir, "missing.jsonl"), false); err == nil {
		t.Error("missing file must fail")
	}
}
