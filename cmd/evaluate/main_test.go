package main

import "testing"

func TestRunCombos(t *testing.T) {
	tests := []struct {
		name                       string
		actor, timing, data, src   string
		consent                    string
		beyond, relay, public, ecs bool
	}{
		{name: "wiretap", actor: "government", timing: "realtime", data: "content", src: "isp", public: true, ecs: true},
		{name: "pen", actor: "government", timing: "realtime", data: "addressing", src: "isp", public: true, ecs: true},
		{name: "provider", actor: "provider", timing: "realtime", data: "content", src: "own", public: true, ecs: true},
		{name: "crist", actor: "government", timing: "stored", data: "device", src: "seized", beyond: true, public: true, ecs: true},
		{name: "sca", actor: "government", timing: "stored", data: "content", src: "held", public: true, ecs: true},
		{name: "consent", actor: "government", timing: "realtime", data: "content", src: "victim", consent: "trespasser", public: true, ecs: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.actor, tt.timing, tt.data, tt.src, tt.consent, tt.beyond, tt.relay, tt.public, tt.ecs, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunJSON(t *testing.T) {
	if err := run("government", "realtime", "content", "isp", "", false, false, true, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	bad := [][5]string{
		{"alien", "realtime", "content", "isp", ""},
		{"government", "never", "content", "isp", ""},
		{"government", "realtime", "vibes", "isp", ""},
		{"government", "realtime", "content", "moon", ""},
		{"government", "realtime", "content", "isp", "nobody"},
	}
	for _, b := range bad {
		if err := run(b[0], b[1], b[2], b[3], b[4], false, false, true, true, false); err == nil {
			t.Errorf("combo %v must fail", b)
		}
	}
}
