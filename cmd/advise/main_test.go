package main

import "testing"

func TestRunSingleScene(t *testing.T) {
	if err := run(8, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllScenes(t *testing.T) {
	if err := run(0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadScene(t *testing.T) {
	if err := run(99, false); err == nil {
		t.Fatal("scene 99 must fail")
	}
}
