// Command advise runs the lawgate redesign advisor over every Table 1
// scene that requires process, printing the cheaper designs the paper
// recommends researchers aim for ("focus on crime scene investigations
// that do not need Warrant/Court Order/Subpoena").
//
// Usage:
//
//	advise [-scene N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"lawgate/internal/legal"
	"lawgate/internal/scenario"
)

func main() {
	sceneNum := flag.Int("scene", 0, "advise a single Table 1 scene (0 = all scenes needing process)")
	stats := flag.Bool("engine-stats", false, "print engine cache/dispatch counters to stderr when done")
	flag.Parse()
	if err := run(*sceneNum, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "advise:", err)
		os.Exit(1)
	}
}

func run(sceneNum int, stats bool) error {
	// The advisor re-evaluates each scene's counterfactual variants, so a
	// ruling cache lets the batch pass and the advisor share work.
	opts := []legal.EngineOption{legal.WithRulingCache(0)}
	if stats {
		opts = append(opts, legal.WithEngineStats())
	}
	engine := legal.NewEngine(opts...)
	var scenes []scenario.Scene
	if sceneNum != 0 {
		s, err := scenario.ByNumber(sceneNum)
		if err != nil {
			return err
		}
		scenes = []scenario.Scene{s}
	} else {
		scenes = scenario.Table1()
	}
	actions := make([]legal.Action, len(scenes))
	for i, s := range scenes {
		actions[i] = s.Action
	}
	rulings, err := engine.EvaluateBatch(context.Background(), actions)
	if err != nil {
		return err
	}
	for i, s := range scenes {
		ruling := rulings[i]
		if !ruling.NeedsProcess() {
			continue
		}
		fmt.Printf("Scene %d: %s\n", s.Number, s.Description)
		fmt.Printf("  as designed: %s (%s)\n", ruling.Required, ruling.Regime)
		advice, err := engine.Advise(s.Action)
		if err != nil {
			return err
		}
		if len(advice) == 0 {
			fmt.Println("  no cheaper redesign available within the encoded doctrine")
		}
		for _, ad := range advice {
			fmt.Printf("  -> %s: %s\n     %s\n",
				ad.Ruling.Required, ad.Alternative.Name, ad.Explanation)
		}
		fmt.Println()
	}
	if stats {
		s := engine.Stats()
		fmt.Fprintf(os.Stderr,
			"engine stats: %d evaluations (+%d deduped), cache %d hits / %d misses, %d rules scanned (table %d)\n",
			s.Evaluations, s.BatchDeduped, s.CacheHits, s.CacheMisses, s.RulesScanned, s.RuleTableSize)
	}
	return nil
}
