// Command p2phunt runs the Section IV-A experiment sweep: the anonymous-
// P2P timing attack's classification quality as a function of the probe
// budget and of the protocol's artificial-delay floor. Experiment E2.
//
// Usage:
//
//	p2phunt [-neighbors N] [-sources S] [-trials T]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"lawgate/internal/p2p"
	"lawgate/internal/stats"
)

func main() {
	neighbors := flag.Int("neighbors", 16, "investigator neighbor count")
	sources := flag.Int("sources", 6, "neighbors that are true sources")
	trials := flag.Int("trials", 5, "seeds averaged per configuration")
	flag.Parse()
	if err := run(*neighbors, *sources, *trials); err != nil {
		fmt.Fprintln(os.Stderr, "p2phunt:", err)
		os.Exit(1)
	}
}

func run(neighbors, sources, trials int) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "E2 — anonymous-P2P timing attack (%d neighbors, %d sources, %d trials/point)\n",
		neighbors, sources, trials)
	fmt.Fprintln(w, "Legal posture: no warrant/court order/subpoena required (Table 1 scene 10).")

	fmt.Fprintln(w, "\nSeries 1: classification vs probe budget (OneSwarm delays 150-300 ms)")
	fmt.Fprintln(w, "probes\taccuracy\tprecision\trecall")
	for _, probes := range []int{1, 2, 4, 8, 16, 32} {
		acc, prec, rec, err := average(neighbors, sources, probes, trials, p2p.DefaultConfig(p2p.ModeAnonymous))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\n", probes, acc, prec, rec)
	}

	fmt.Fprintln(w, "\nSeries 2: classification vs delay floor (probes=8; overlap when floor < ~170 ms)")
	fmt.Fprintln(w, "delay-min(ms)\taccuracy\tprecision\trecall")
	for _, minMS := range []int{40, 60, 90, 120, 150, 200} {
		cfg := p2p.DefaultConfig(p2p.ModeAnonymous)
		cfg.DelayMin = time.Duration(minMS) * time.Millisecond
		acc, prec, rec, err := average(neighbors, sources, 8, trials, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\n", minMS, acc, prec, rec)
	}
	return w.Flush()
}

func average(neighbors, sources, probes, trials int, cfg p2p.Config) (acc, prec, rec float64, err error) {
	accs := make([]float64, 0, trials)
	for t := 0; t < trials; t++ {
		res, runErr := p2p.RunExperiment(p2p.ExperimentConfig{
			Seed:      int64(1000*probes + t + 1),
			Neighbors: neighbors,
			Sources:   sources,
			Probes:    probes,
			Overlay:   cfg,
		})
		if runErr != nil {
			return 0, 0, 0, runErr
		}
		accs = append(accs, res.Accuracy())
		prec += res.Precision()
		rec += res.Recall()
	}
	sum, err := stats.Summarize(accs)
	if err != nil {
		return 0, 0, 0, err
	}
	n := float64(trials)
	return sum.Mean, prec / n, rec / n, nil
}
