// Command p2phunt runs the Section IV-A experiment sweep: the anonymous-
// P2P timing attack's classification quality as a function of the probe
// budget and of the protocol's artificial-delay floor. Experiment E2.
//
// Trials run in parallel on the shared experiment harness; results are
// byte-identical for a given -seed regardless of -workers.
//
// With -faults PROFILE the sweeps run on a degraded substrate (see
// -faults help for the profile names) and two degradation series are
// appended: classification quality vs injected packet loss and vs peer
// churn. -trial-timeout and -max-steps bound each trial; a trial cut off
// by either bound fails the run with a joined error naming it.
//
// With -partitions P the swarm-scale series is appended: the timing
// attack inside a preferential-attachment swarm with organic query
// load, run on the sharded parallel engine with P partitions. The
// emitted results are identical for every P — only wall-clock time
// changes — so CI compares runs at different partition counts.
//
// Usage:
//
//	p2phunt [-neighbors N] [-sources S] [-trials T] [-workers W] [-seed S]
//	        [-faults PROFILE] [-partitions P] [-trial-timeout D] [-max-steps N]
//	        [-cpuprofile FILE] [-memprofile FILE]
//	        [-json|-csv] [-smoke]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"lawgate/internal/experiment"
	"lawgate/internal/faults"
	"lawgate/internal/p2p"
	"lawgate/internal/profiling"
)

func main() {
	var o options
	flag.IntVar(&o.neighbors, "neighbors", 16, "investigator neighbor count")
	flag.IntVar(&o.sources, "sources", 6, "neighbors that are true sources")
	flag.IntVar(&o.trials, "trials", 5, "seeds per sweep point")
	flag.IntVar(&o.workers, "workers", 0, "parallel trial workers (0 = all CPUs)")
	flag.Int64Var(&o.seed, "seed", 1, "master seed; per-trial seeds derive from it")
	flag.StringVar(&o.faults, "faults", "",
		"fault profile ("+strings.Join(faults.Profiles(), ", ")+"); adds loss and churn degradation series")
	flag.IntVar(&o.partitions, "partitions", 0,
		"run the swarm-scale series on the sharded engine with this many partitions (0 = skip)")
	flag.DurationVar(&o.trialTimeout, "trial-timeout", 0, "wall-clock bound per trial (0 = none)")
	flag.Int64Var(&o.maxSteps, "max-steps", 0, "simulator event bound per trial (0 = default)")
	flag.BoolVar(&o.json, "json", false, "emit results as JSON instead of text")
	flag.BoolVar(&o.csv, "csv", false, "emit results as CSV instead of text")
	flag.BoolVar(&o.smoke, "smoke", false, "tiny CI sweep: 4 neighbors, 1 trial, 2 points per series")
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()
	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2phunt:", err)
		os.Exit(1)
	}
	err = run(os.Stdout, o)
	if stopErr := stop(); err == nil {
		err = stopErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2phunt:", err)
		os.Exit(1)
	}
}

type options struct {
	neighbors, sources, trials, workers int
	partitions                          int
	seed                                int64
	faults                              string
	trialTimeout                        time.Duration
	maxSteps                            int64
	json, csv, smoke                    bool
}

// normalized applies the -smoke grid reductions to the options themselves
// so the rendered header always matches the grid actually run.
func (o options) normalized() options {
	if o.smoke {
		o.neighbors, o.sources, o.trials = 4, 2, 1
	}
	return o
}

// sweeps declares the E2 series for the given options. Naming a fault
// profile appends the loss and churn degradation series on top of it.
func sweeps(o options) ([]experiment.Sweep, error) {
	sc := p2p.SweepConfig{
		Neighbors: o.neighbors,
		Sources:   o.sources,
		Reps:      o.trials,
		Seed:      o.seed,
		Overlay:   p2p.DefaultConfig(p2p.ModeAnonymous),
		MaxSteps:  o.maxSteps,
	}
	probes := []int{1, 2, 4, 8, 16, 32}
	floors := []time.Duration{40, 60, 90, 120, 150, 200}
	losses := []float64{0, 0.05, 0.10, 0.20, 0.30, 0.40}
	downs := []float64{0, 0.05, 0.10, 0.20, 0.30}
	fixedProbes := 8
	if o.smoke {
		probes = []int{1, 4}
		floors = []time.Duration{90, 150}
		losses = []float64{0, 0.30}
		downs = []float64{0, 0.20}
		fixedProbes = 4
	}
	for i := range floors {
		floors[i] *= time.Millisecond
	}
	if o.faults != "" {
		plan, err := faults.Profile(o.faults)
		if err != nil {
			return nil, err
		}
		sc.Faults = plan
		// Degraded substrates get the resilient probing defaults.
		sc.ProbeRetries = 2
	}
	out := []experiment.Sweep{
		p2p.ProbeSweep(sc, probes),
		p2p.DelaySweep(sc, fixedProbes, floors),
	}
	if o.faults != "" {
		out = append(out,
			p2p.LossSweep(sc, fixedProbes, losses),
			p2p.ChurnSweep(sc, fixedProbes, downs),
		)
	}
	if o.partitions > 0 {
		scale := p2p.DefaultScaleConfig()
		scale.Reps = o.trials
		scale.Seed = o.seed
		scale.Partitions = o.partitions
		scale.MaxSteps = o.maxSteps
		scale.Faults = sc.Faults
		swarms := []int{200, 400, 800}
		if o.smoke {
			scale.Neighbors, scale.Sources, scale.Probes = 6, 2, 2
			swarms = []int{48, 96}
		}
		out = append(out, p2p.ScaleSweep(scale, swarms))
	}
	return out, nil
}

func run(w io.Writer, o options) error {
	o = o.normalized()
	sws, err := sweeps(o)
	if err != nil {
		return err
	}
	runner := experiment.Runner{Workers: o.workers, TrialTimeout: o.trialTimeout}
	report := experiment.Report{Name: "E2-p2p-timing-attack"}
	for _, sw := range sws {
		series, err := runner.Run(context.Background(), sw)
		if err != nil {
			return fmt.Errorf("sweep %s: %w", sw.Name, err)
		}
		report.Series = append(report.Series, series)
	}
	switch {
	case o.json:
		return report.WriteJSON(w)
	case o.csv:
		return report.WriteCSV(w)
	}
	return render(w, o, report)
}

func render(w io.Writer, o options, report experiment.Report) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E2 — anonymous-P2P timing attack (%d neighbors, %d sources, %d trials/point, seed %d)\n",
		o.neighbors, o.sources, o.trials, o.seed)
	fmt.Fprintln(tw, "Legal posture: no warrant/court order/subpoena required (Table 1 scene 10).")
	if o.faults != "" {
		fmt.Fprintf(tw, "Fault profile: %s\n", o.faults)
	}
	titles := map[string]string{
		"p2p-probe-budget": "classification vs probe budget (OneSwarm delays 150-300 ms)",
		"p2p-delay-floor":  "classification vs delay floor (overlap when floor < ~170 ms)",
		"p2p-loss":         "classification vs injected packet loss (degradation)",
		"p2p-churn":        "classification vs peer churn down-fraction (degradation)",
		"p2p-swarm-scale":  "classification vs swarm size (organic load on the evidence channel)",
	}
	for _, s := range report.Series {
		fmt.Fprintf(tw, "\nSeries %s: %s\n", s.Sweep, titles[s.Sweep])
		fmt.Fprintln(tw, "point\taccuracy ±CI\tprecision\trecall\tanswered")
		for _, p := range s.Points {
			acc := p.Metric("accuracy")
			fmt.Fprintf(tw, "%s\t%.3f ±%.3f\t%.3f\t%.3f\t%.3f\n",
				p.Label, acc.Mean, acc.CI95, p.Metric("precision").Mean,
				p.Metric("recall").Mean, p.Metric("answered").Mean)
		}
	}
	return tw.Flush()
}
