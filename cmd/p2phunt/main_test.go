package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"lawgate/internal/experiment"
	"lawgate/internal/p2p"
)

// smokeOptions is the tiny CI sweep at two workers.
func smokeOptions() options {
	return options{neighbors: 4, sources: 2, trials: 1, workers: 2, seed: 1, smoke: true}
}

func TestProbeSweepPoint(t *testing.T) {
	sc := p2p.SweepConfig{
		Neighbors: 6, Sources: 2, Reps: 2, Seed: 1,
		Overlay: p2p.DefaultConfig(p2p.ModeAnonymous),
	}
	series, err := experiment.Runner{Workers: 2}.Run(context.Background(), p2p.ProbeSweep(sc, []int{4}))
	if err != nil {
		t.Fatal(err)
	}
	p := series.Points[0]
	for _, key := range []string{"accuracy", "precision", "recall"} {
		if m := p.Metric(key); m.Mean < 0 || m.Mean > 1 {
			t.Errorf("%s = %v out of range", key, m.Mean)
		}
	}
	if acc := p.Metric("accuracy").Mean; acc != 1 {
		t.Errorf("accuracy at default separation = %v, want 1", acc)
	}
}

func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, smokeOptions()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestRunJSONDeterministicAcrossWorkers(t *testing.T) {
	var blobs [][]byte
	for _, workers := range []int{1, 3} {
		o := smokeOptions()
		o.workers = workers
		o.json = true
		var buf bytes.Buffer
		if err := run(&buf, o); err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, buf.Bytes())
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Error("JSON output differs between workers=1 and workers=3")
	}
	var report experiment.Report
	if err := json.Unmarshal(blobs[0], &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(report.Series) != 2 {
		t.Errorf("series count = %d, want 2", len(report.Series))
	}
}

func TestRunSmallFullGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	var buf bytes.Buffer
	if err := run(&buf, options{neighbors: 4, sources: 2, trials: 1, workers: 2, seed: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestRunFaultProfileAddsDegradationSeries: -faults appends the loss
// and churn series and stays deterministic across worker counts.
func TestRunFaultProfileAddsDegradationSeries(t *testing.T) {
	var blobs [][]byte
	for _, workers := range []int{1, 4} {
		o := smokeOptions()
		o.workers = workers
		o.faults = "lossy"
		o.json = true
		var buf bytes.Buffer
		if err := run(&buf, o); err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, buf.Bytes())
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Error("lossy smoke JSON differs between workers=1 and workers=4")
	}
	var report experiment.Report
	if err := json.Unmarshal(blobs[0], &report); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(report.Series))
	for i, s := range report.Series {
		names[i] = s.Sweep
	}
	want := []string{"p2p-probe-budget", "p2p-delay-floor", "p2p-loss", "p2p-churn"}
	if len(names) != len(want) {
		t.Fatalf("series = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("series = %v, want %v", names, want)
		}
	}
}

// TestRunBadFaultProfile: an unknown profile is a clear startup error,
// not a silent no-op.
func TestRunBadFaultProfile(t *testing.T) {
	o := smokeOptions()
	o.faults = "catastrophic"
	err := run(io.Discard, o)
	if err == nil || !strings.Contains(err.Error(), "catastrophic") {
		t.Errorf("err = %v, want unknown-profile error naming it", err)
	}
}

// TestRunMaxStepsCutsTrialsOff: an absurdly small step budget fails the
// run with an error naming the budget, not a hang or a panic.
func TestRunMaxStepsCutsTrialsOff(t *testing.T) {
	o := smokeOptions()
	o.maxSteps = 10
	err := run(io.Discard, o)
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("err = %v, want step-budget error", err)
	}
}
