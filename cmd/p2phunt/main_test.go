package main

import (
	"testing"

	"lawgate/internal/p2p"
)

func TestAverage(t *testing.T) {
	acc, prec, rec, err := average(6, 2, 4, 2, p2p.DefaultConfig(p2p.ModeAnonymous))
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{"accuracy": acc, "precision": prec, "recall": rec} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v out of range", name, v)
		}
	}
	if acc != 1 {
		t.Errorf("accuracy at default separation = %v, want 1", acc)
	}
}

func TestRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	if err := run(4, 2, 1); err != nil {
		t.Fatal(err)
	}
}
