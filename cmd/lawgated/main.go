// Command lawgated serves the legal engine as a hardened multi-tenant
// HTTP/JSON ruling service.
//
// Serve mode (the default) binds -addr, optionally records the bound
// address in -port-file (useful with ":0"), and runs until SIGTERM or
// SIGINT, then drains gracefully: readiness flips to 503, in-flight
// requests finish, every tenant ledger seals a final checkpoint, and
// the process exits 0.
//
// Probe mode (-probe URL) runs a conformance pass against a live
// server: every endpoint, the deliberate 4xx paths (malformed JSON,
// oversized body, unknown tenant, invalid action), a rules hot swap,
// and a client-side consistency-proof verification of the ledger
// checkpoint endpoint. It exits nonzero on the first violation.
//
// Bench mode (-bench) starts an in-process server, drives it through
// the loadgen chaos schedule (bursts, malformed, oversized, slow-loris,
// poisoned evaluations, mid-run hot swaps), asserts that every request
// ended in a deliberate status with no panic crash and no goroutine
// leak, and writes a lawgate-bench/v1 JSON report with the observed
// latency percentiles and throughput next to a direct in-process
// Engine.Evaluate baseline measured in the same run.
package main

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"lawgate/internal/ledger"
	"lawgate/internal/legal"
	"lawgate/internal/server"
	"lawgate/internal/server/loadgen"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		portFile   = flag.String("port-file", "", "write the bound host:port to this file once listening")
		tenants    = flag.String("tenants", "default", "comma-separated tenant IDs to provision")
		slots      = flag.Int("slots", 0, "concurrent evaluation slots (0 = one per CPU)")
		maxWait    = flag.Int("max-wait", server.DefaultMaxWait, "queued requests before shedding")
		rate       = flag.Float64("rate", 0, "per-tenant rulings/sec rate limit (0 = unlimited)")
		burst      = flag.Float64("burst", 0, "per-tenant rate-limit burst")
		deadline   = flag.Duration("deadline", server.DefaultDeadline, "per-request deadline")
		bodyTime   = flag.Duration("body-timeout", server.DefaultBodyReadTimeout, "request body delivery timeout")
		maxBody    = flag.Int64("max-body", server.DefaultMaxBody, "request body byte cap")
		drainDelay = flag.Duration("drain-delay", 0, "pre-drain window where readiness is 503 but the listener still serves")

		probeURL = flag.String("probe", "", "run the conformance probe against this base URL and exit")

		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (separate listener, never the serving mux)")

		bench      = flag.Bool("bench", false, "run the chaos bench against an in-process server and exit")
		benchDur   = flag.Duration("bench-duration", 2*time.Second, "chaos bench duration")
		benchWorke = flag.Int("bench-workers", 16, "chaos bench worker count")
		out        = flag.String("o", "", "bench report output file (default stdout)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		paddr, err := startPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lawgated: pprof:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lawgated: pprof on http://%s/debug/pprof/\n", paddr)
	}

	var err error
	switch {
	case *probeURL != "":
		err = probe(*probeURL)
	case *bench:
		err = runBench(*benchDur, *benchWorke, *out)
	default:
		err = serve(serveConfig{
			addr: *addr, portFile: *portFile, tenants: splitTenants(*tenants),
			slots: *slots, maxWait: *maxWait, rate: *rate, burst: *burst,
			deadline: *deadline, bodyTimeout: *bodyTime, maxBody: *maxBody,
			drainDelay: *drainDelay,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lawgated:", err)
		os.Exit(1)
	}
}

// startPprof serves the pprof endpoints on their own listener and mux.
// Profiling stays opt-in and off the serving mux: the hardened ruling
// handler never exposes debug surfaces, and profile scrapes cannot
// consume evaluation slots.
func startPprof(addr string) (net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "lawgated: pprof listener:", err)
		}
	}()
	return ln.Addr(), nil
}

func splitTenants(s string) []string {
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

type serveConfig struct {
	addr, portFile string
	tenants        []string
	slots, maxWait int
	rate, burst    float64
	deadline       time.Duration
	bodyTimeout    time.Duration
	maxBody        int64
	drainDelay     time.Duration
}

func serve(cfg serveConfig) error {
	s, err := server.New(
		server.WithTenants(cfg.tenants...),
		server.WithAdmission(cfg.slots, cfg.maxWait),
		server.WithRateLimit(cfg.rate, cfg.burst),
		server.WithDeadline(cfg.deadline),
		server.WithBodyReadTimeout(cfg.bodyTimeout),
		server.WithMaxBody(cfg.maxBody),
		server.WithDrainDelay(cfg.drainDelay),
	)
	if err != nil {
		return err
	}
	addr, err := s.Start(cfg.addr)
	if err != nil {
		return err
	}
	if cfg.portFile != "" {
		if err := os.WriteFile(cfg.portFile, []byte(addr.String()), 0o644); err != nil {
			return fmt.Errorf("writing port file: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "lawgated: serving %d tenant(s) on %s\n", len(cfg.tenants), addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	got := <-sig
	fmt.Fprintf(os.Stderr, "lawgated: %s received, draining\n", got)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return err
	}
	for _, cp := range s.FinalCheckpoints() {
		fmt.Fprintf(os.Stderr, "lawgated: tenant %s sealed final checkpoint size=%d root=%s\n",
			cp.Tenant, cp.Checkpoint.Size, hex.EncodeToString(cp.Checkpoint.Root[:]))
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "lawgated: drained clean: %d requests, %d rulings, %d shed, %d panics recovered\n",
		st.Requests, st.Rulings, st.Shed, st.Panics)
	return nil
}

// probeAction is the conformance probe's standard wiretap action.
func probeAction(name string) legal.Action {
	return legal.Action{
		Name:   name,
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingRealTime,
		Data:   legal.DataContent,
		Source: legal.SourceThirdPartyNetwork,
	}
}

// probe runs the conformance pass against a live server.
func probe(base string) error {
	client := &http.Client{Timeout: 15 * time.Second}
	base = strings.TrimRight(base, "/")

	expect := func(what string, got, want int, body []byte) error {
		if got != want {
			return fmt.Errorf("probe: %s: status %d, want %d (body %s)", what, got, want, body)
		}
		fmt.Printf("probe: %-34s %d\n", what, got)
		return nil
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		status, body, err := doGet(client, base+path)
		if err != nil {
			return fmt.Errorf("probe: GET %s: %w", path, err)
		}
		if err := expect("GET "+path, status, http.StatusOK, body); err != nil {
			return err
		}
	}

	// Valid evaluation.
	status, body, err := doPost(client, base+"/v1/evaluate", mustJSON(probeAction("probe-wiretap")))
	if err != nil {
		return fmt.Errorf("probe: evaluate: %w", err)
	}
	if err := expect("POST /v1/evaluate", status, http.StatusOK, body); err != nil {
		return err
	}
	var ev server.EvaluateResponse
	if err := json.Unmarshal(body, &ev); err != nil {
		return fmt.Errorf("probe: evaluate response: %w", err)
	}
	if ev.Ruling.Required == "" || !ev.Ruling.NeedsProcess {
		return fmt.Errorf("probe: wiretap ruling %+v, want process required", ev.Ruling)
	}
	// The serving hot path hand-encodes this response; the bytes on the
	// wire must be indistinguishable from the stdlib rendering of the
	// decoded struct.
	if reenc := append(mustJSON(ev), '\n'); !bytes.Equal(body, reenc) {
		return fmt.Errorf("probe: evaluate bytes diverge from canonical JSON:\n got %s\nwant %s", body, reenc)
	}
	fmt.Printf("probe: %-34s byte-identical\n", "evaluate wire encoding")

	// Deliberate 4xx paths: malformed, oversized, unknown tenant,
	// invalid action.
	if status, body, err = doPost(client, base+"/v1/evaluate", []byte(`{"Name": "broken`)); err != nil {
		return err
	}
	if err := expect("malformed JSON", status, http.StatusBadRequest, body); err != nil {
		return err
	}
	oversized := []byte(`{"Name": "` + strings.Repeat("x", 2<<20) + `"}`)
	if status, body, err = doPost(client, base+"/v1/evaluate", oversized); err != nil {
		return err
	}
	if err := expect("oversized body", status, http.StatusRequestEntityTooLarge, body); err != nil {
		return err
	}
	if status, body, err = doPost(client, base+"/v1/evaluate?tenant=no-such", mustJSON(probeAction("x"))); err != nil {
		return err
	}
	if err := expect("unknown tenant", status, http.StatusNotFound, body); err != nil {
		return err
	}
	bad := probeAction("bad")
	bad.Actor = legal.Actor(99)
	if status, body, err = doPost(client, base+"/v1/evaluate", mustJSON(bad)); err != nil {
		return err
	}
	if err := expect("invalid action", status, http.StatusUnprocessableEntity, body); err != nil {
		return err
	}

	// Batch with one poisoned slot.
	batch := []legal.Action{probeAction("probe-a"), bad, probeAction("probe-b")}
	if status, body, err = doPost(client, base+"/v1/evaluate/batch", mustJSON(batch)); err != nil {
		return err
	}
	if err := expect("POST /v1/evaluate/batch", status, http.StatusOK, body); err != nil {
		return err
	}
	var br server.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		return err
	}
	if len(br.Rulings) != 3 || br.Rulings[1] != nil || len(br.Errors) != 1 || br.Errors[0].Index != 1 {
		return fmt.Errorf("probe: batch partial failure mishandled: %s", body)
	}
	if reenc := append(mustJSON(br), '\n'); !bytes.Equal(body, reenc) {
		return fmt.Errorf("probe: batch bytes diverge from canonical JSON:\n got %s\nwant %s", body, reenc)
	}
	fmt.Printf("probe: %-34s byte-identical\n", "batch wire encoding")

	// Advisory.
	if status, body, err = doPost(client, base+"/v1/advise", mustJSON(probeAction("probe-advise"))); err != nil {
		return err
	}
	if err := expect("POST /v1/advise", status, http.StatusOK, body); err != nil {
		return err
	}
	var ar server.AdviseResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		return err
	}
	if len(ar.Advice) == 0 {
		return fmt.Errorf("probe: no advice for a super-warrant wiretap")
	}

	// Checkpoint anchoring: take one, serve more rulings, then verify
	// client-side that the new checkpoint extends the anchor.
	anchor, err := getCheckpoint(client, base+"/v1/ledger/checkpoint")
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, _, err := doPost(client, base+"/v1/evaluate", mustJSON(probeAction("probe-extend"))); err != nil {
			return err
		}
	}
	cur, err := getCheckpoint(client, fmt.Sprintf("%s/v1/ledger/checkpoint?since=%d", base, anchor.Size))
	if err != nil {
		return err
	}
	if cur.Consistency == nil {
		return fmt.Errorf("probe: checkpoint?since returned no consistency proof")
	}
	proof := ledger.ConsistencyProof{OldSize: cur.Consistency.OldSize, NewSize: cur.Consistency.NewSize}
	for _, h := range cur.Consistency.Path {
		node, err := unhex32(h)
		if err != nil {
			return fmt.Errorf("probe: consistency path: %w", err)
		}
		proof.Path = append(proof.Path, node)
	}
	oldRoot, err := unhex32(anchor.Root)
	if err != nil {
		return err
	}
	newRoot, err := unhex32(cur.Root)
	if err != nil {
		return err
	}
	if !ledger.VerifyConsistency(proof, oldRoot, newRoot) {
		return fmt.Errorf("probe: checkpoint consistency proof REJECTED: the served ledger does not extend the anchored checkpoint")
	}
	fmt.Printf("probe: %-34s verified (size %d -> %d)\n", "ledger consistency", anchor.Size, cur.Size)

	// Rules hot swap, then tenant info.
	status, body, err = doPut(client, base+"/v1/tenants/default/rules",
		mustJSON(server.RuleConfig{Container: "single"}))
	if err != nil {
		return err
	}
	if err := expect("PUT /v1/tenants/default/rules", status, http.StatusOK, body); err != nil {
		return err
	}
	if status, body, err = doGet(client, base+"/v1/tenants/default"); err != nil {
		return err
	}
	if err := expect("GET /v1/tenants/default", status, http.StatusOK, body); err != nil {
		return err
	}
	var tv server.TenantView
	if err := json.Unmarshal(body, &tv); err != nil {
		return err
	}
	if tv.Container != "single" {
		return fmt.Errorf("probe: hot swap not visible: container %q", tv.Container)
	}

	// Metrics: the probe's hostile traffic must not have crashed
	// anything.
	if status, body, err = doGet(client, base+"/metricsz"); err != nil {
		return err
	}
	if err := expect("GET /metricsz", status, http.StatusOK, body); err != nil {
		return err
	}
	var st server.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return err
	}
	if st.Panics != 0 {
		return fmt.Errorf("probe: server recovered %d panics during the probe", st.Panics)
	}

	fmt.Println("probe: PASS")
	return nil
}

// runBench starts an in-process server with the chaos hook, runs the
// loadgen schedule against it over real TCP, asserts the robustness
// invariants, and writes the lawgate-bench/v1 report.
func runBench(dur time.Duration, workers int, out string) error {
	s, err := server.New(
		server.WithAdmission(0, server.DefaultMaxWait),
		server.WithBodyReadTimeout(300*time.Millisecond),
		server.WithEvalHook(func(_ context.Context, _ string, a *legal.Action) {
			if a.Name == loadgen.ChaosPanicName {
				panic("chaos: poisoned evaluation")
			}
		}),
	)
	if err != nil {
		return err
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	goroutinesBefore := runtime.NumGoroutine()

	res, err := loadgen.Run(loadgen.Config{
		BaseURL:   "http://" + addr.String(),
		Workers:   workers,
		Duration:  dur,
		Chaos:     true,
		SwapEvery: dur / 20,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: %d requests in %s, statuses %v, %d swaps\n",
		res.Requests, res.Elapsed.Round(time.Millisecond), res.Statuses, res.Swaps)
	if err := res.Check(); err != nil {
		return err
	}

	// Drain and verify the shutdown path under the same run.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("bench: drain after chaos: %w", err)
	}
	if len(s.FinalCheckpoints()) == 0 {
		return fmt.Errorf("bench: drain sealed no final checkpoint")
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+5 {
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: goroutine leak: %d now vs %d before the run",
				runtime.NumGoroutine(), goroutinesBefore)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Baseline measured in the same run: the direct in-process cost of
	// one evaluation, i.e. what the HTTP/admission/audit layers wrap.
	directNs := measureDirectEvaluate()

	report := benchReport{
		Schema:   "lawgate-bench/v1",
		Go:       runtime.Version(),
		Cores:    runtime.NumCPU(),
		Maxprocs: runtime.GOMAXPROCS(0),
		Count:    1,
		Benchmarks: []benchEntry{
			{Name: "ServerEvaluateP50", NsPerOp: float64(res.P50.Nanoseconds())},
			{Name: "ServerEvaluateP99", NsPerOp: float64(res.P99.Nanoseconds())},
			{Name: "ServerRulingsPerSec",
				NsPerOp:   1e9 / res.RulingsPerSec,
				OpsPerSec: res.RulingsPerSec},
			// Client and server share the bench process, so this counts
			// both sides of every request (chaos included): the server's
			// pooled hot path plus the harness's own per-request cost.
			{Name: "ServerAllocsPerRequest", AllocsPerOp: res.AllocsPerRequest},
		},
		Baseline: &benchBaseline{
			Note: "direct in-process Engine.Evaluate measured in the same run; the delta is the full HTTP + admission + audit overhead under the chaos schedule",
			Benchmarks: []benchEntry{
				{Name: "DirectEvaluate", NsPerOp: directNs},
			},
		},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if out == "" {
		_, err = os.Stdout.Write(buf.Bytes())
		return err
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (p50=%s p99=%s rulings/sec=%.0f)\n",
		out, res.P50, res.P99, res.RulingsPerSec)
	return nil
}

// measureDirectEvaluate times the bare engine on the bench action.
func measureDirectEvaluate() float64 {
	eng := legal.NewEngine(legal.WithRulingCache(0))
	a := probeAction("bench-direct")
	const n = 20000
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := eng.Evaluate(a); err != nil {
			return 0
		}
	}
	return float64(time.Since(start).Nanoseconds()) / n
}

type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
}

type benchBaseline struct {
	Note       string       `json:"note"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

type benchReport struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	// Cores and Maxprocs record the machine the report was produced
	// on: latency and throughput claims are machine-relative, and CI
	// reads cores to decide which gates are meaningful.
	Cores      int            `json:"cores,omitempty"`
	Maxprocs   int            `json:"maxprocs,omitempty"`
	Count      int            `json:"count"`
	Benchmarks []benchEntry   `json:"benchmarks"`
	Baseline   *benchBaseline `json:"baseline"`
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func doGet(client *http.Client, url string) (int, []byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func doPost(client *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

func doPut(client *http.Client, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

func getCheckpoint(client *http.Client, url string) (server.CheckpointResponse, error) {
	var cp server.CheckpointResponse
	status, body, err := doGet(client, url)
	if err != nil {
		return cp, err
	}
	if status != http.StatusOK {
		return cp, fmt.Errorf("probe: checkpoint: status %d body %s", status, body)
	}
	return cp, json.Unmarshal(body, &cp)
}

func unhex32(s string) ([32]byte, error) {
	var out [32]byte
	b, err := hex.DecodeString(s)
	if err != nil {
		return out, err
	}
	if len(b) != 32 {
		return out, fmt.Errorf("digest %q is %d bytes, want 32", s, len(b))
	}
	copy(out[:], b)
	return out, nil
}
