// Command scenariotable regenerates Table 1 of "When Digital Forensic
// Research Meets Laws": the twenty digital-crime scenes, the paper's
// answer, and the lawgate engine's ruling for each. Experiment E1.
//
// Usage:
//
//	scenariotable [-verbose]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"lawgate/internal/legal"
	"lawgate/internal/report"
	"lawgate/internal/scenario"
)

func main() {
	verbose := flag.Bool("verbose", false, "print rationale chains and citations")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	stats := flag.Bool("engine-stats", false, "print engine cache/dispatch counters to stderr when done")
	flag.Parse()
	if err := run(*verbose, *asJSON, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "scenariotable:", err)
		os.Exit(1)
	}
}

func run(verbose, asJSON, stats bool) error {
	opts := []legal.EngineOption{legal.WithRulingCache(0)}
	if stats {
		opts = append(opts, legal.WithEngineStats())
	}
	engine := legal.NewEngine(opts...)
	defer func() {
		if stats {
			s := engine.Stats()
			fmt.Fprintf(os.Stderr,
				"engine stats: %d evaluations (+%d deduped), cache %d hits / %d misses, %d rules scanned (table %d)\n",
				s.Evaluations, s.BatchDeduped, s.CacheHits, s.CacheMisses, s.RulesScanned, s.RuleTableSize)
		}
	}()
	if asJSON {
		scenes, err := report.Table1Report(engine)
		if err != nil {
			return err
		}
		studies, err := report.CaseStudiesReport(engine)
		if err != nil {
			return err
		}
		return report.WriteJSON(os.Stdout, struct {
			Table1      []report.SceneView     `json:"table1"`
			CaseStudies []report.CaseStudyView `json:"caseStudies"`
			Matches     int                    `json:"matches"`
		}{scenes, studies, report.Matches(scenes)})
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TABLE 1 — WARRANT/COURT ORDER/SUBPOENA IN DIGITAL CRIME SCENES")
	fmt.Fprintln(w, "#\tPaper\tEngine\tRegime\tRequired\tMatch")
	matches := 0
	sceneRulings, err := scenario.EvaluateTable1(context.Background(), engine)
	if err != nil {
		return err
	}
	for _, sr := range sceneRulings {
		s, r := sr.Scene, sr.Ruling
		engineAnswer := "No need"
		if r.NeedsProcess() {
			engineAnswer = "Need"
		}
		match := "OK"
		if sr.Matches() {
			matches++
		} else {
			match = "MISMATCH"
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%s\n",
			s.Number, s.Answer(), engineAnswer, r.Regime, r.Required, match)
		if verbose {
			fmt.Fprintf(w, "\t%s\t\t\t\t\n", s.Description)
			for _, reason := range r.Rationale {
				fmt.Fprintf(w, "\t· %s\t\t\t\t\n", reason)
			}
			cites := make([]string, 0, len(r.Citations))
			for _, c := range r.Citations {
				cites = append(cites, c.ID)
			}
			fmt.Fprintf(w, "\tcites: %s\t\t\t\t\n", strings.Join(cites, ", "))
		}
	}
	fmt.Fprintf(w, "\nAgreement: %d/20 scenes\n", matches)

	fmt.Fprintln(w, "\nSECTION IV CASE STUDIES")
	fmt.Fprintln(w, "ID\tPaper requires\tEngine requires\tMatch")
	studyRulings, err := scenario.EvaluateCaseStudies(context.Background(), engine)
	if err != nil {
		return err
	}
	for _, cr := range studyRulings {
		cs, r := cr.Study, cr.Ruling
		match := "OK"
		if !cr.Matches() {
			match = "MISMATCH"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", cs.ID, cs.PaperProcess, r.Required, match)
		if verbose {
			fmt.Fprintf(w, "\t%s\t\t\n", cs.Description)
		}
	}
	return w.Flush()
}
