package main

import "testing"

func TestRunPlain(t *testing.T) {
	if err := run(false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerbose(t *testing.T) {
	if err := run(true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := run(false, true, false); err != nil {
		t.Fatal(err)
	}
}
