package main

import "testing"

func TestRunFlows(t *testing.T) {
	for _, flow := range []string{"kyllo", "p2p", "drive", "attribution", "exigent"} {
		if err := run(flow, false); err != nil {
			t.Errorf("flow %s: %v", flow, err)
		}
	}
}

func TestRunWatermarkFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("watermark flow too slow for -short")
	}
	if err := run("watermark", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONExport(t *testing.T) {
	if err := run("kyllo", true); err != nil {
		t.Fatal(err)
	}
	if err := run("drive", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFlow(t *testing.T) {
	if err := run("bogus", false); err == nil {
		t.Fatal("unknown flow must fail")
	}
}
