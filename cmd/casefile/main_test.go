package main

import (
	"path/filepath"
	"testing"

	"lawgate/internal/ledger"
)

func TestRunFlows(t *testing.T) {
	for _, flow := range []string{"kyllo", "p2p", "drive", "attribution", "exigent"} {
		if err := run(flow, false, ""); err != nil {
			t.Errorf("flow %s: %v", flow, err)
		}
	}
}

func TestRunWatermarkFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("watermark flow too slow for -short")
	}
	if err := run("watermark", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONExport(t *testing.T) {
	if err := run("kyllo", true, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("drive", true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFlow(t *testing.T) {
	if err := run("bogus", false, ""); err == nil {
		t.Fatal("unknown flow must fail")
	}
}

// TestRunExportLedger runs a flow with -export-ledger and verifies the
// written ledger loads and passes a full audit — the same path the
// verify-ledger subcommand exercises.
func TestRunExportLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kyllo.ledger")
	if err := run("kyllo", false, path); err != nil {
		t.Fatal(err)
	}
	led, err := ledger.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Verify(); err != nil {
		t.Fatalf("exported ledger failed verification: %v", err)
	}
	if led.Len() == 0 {
		t.Fatal("exported ledger is empty")
	}
}
