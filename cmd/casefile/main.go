// Command casefile runs end-to-end investigations and prints their case
// reports: the Section IV-A P2P traceback (all evidence admissible, no
// process needed for the attack), the Section IV-B watermark traceback
// (court order, then warrant), the Kyllo demonstration (warrantless
// specialized-technology scan suppressed, derivative evidence falling as
// fruit of the poisonous tree, with the suppression opinion rendered), the
// Crist drive examination in both postures, the § III-A-2 attribution
// exam, and the exigent-seizure flow. Experiments E4 and E6.
//
// Usage:
//
//	casefile [-flow p2p|watermark|kyllo|drive|attribution|exigent|all] [-json] [-export-ledger file]
//	casefile verify-ledger <file>
//
// verify-ledger audits a serialized audit ledger (as written by
// -export-ledger): every chain link, record hash, checkpoint-index
// leaf, and the stored trailer commitment. It exits nonzero naming the
// first tampered record if anything was mutated, deleted, reordered,
// or truncated.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"lawgate/internal/investigation"
	"lawgate/internal/ledger"
	"lawgate/internal/opinion"
	"lawgate/internal/report"
	"lawgate/internal/watermark"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "verify-ledger" {
		os.Exit(verifyLedgerCmd(os.Args[2:]))
	}
	flow := flag.String("flow", "all", "which flow to run: p2p, watermark, kyllo, drive, attribution, exigent, or all")
	asJSON := flag.Bool("json", false, "emit machine-readable case exports instead of text")
	exportLedger := flag.String("export-ledger", "", "write the last flow's audit ledger to this file (verify it with `casefile verify-ledger`)")
	flag.Parse()
	if err := run(*flow, *asJSON, *exportLedger); err != nil {
		fmt.Fprintln(os.Stderr, "casefile:", err)
		os.Exit(1)
	}
}

// verifyLedgerCmd implements the verify-ledger subcommand.
func verifyLedgerCmd(args []string) int {
	fs := flag.NewFlagSet("verify-ledger", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: casefile verify-ledger <file>")
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	led, err := ledger.LoadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "casefile verify-ledger:", err)
		return 1
	}
	if err := led.Verify(); err != nil {
		fmt.Fprintln(os.Stderr, "casefile verify-ledger: TAMPERED:", err)
		return 1
	}
	cp := led.Checkpoint()
	fmt.Printf("ledger OK: %d records, root %s\n", cp.Size, hex.EncodeToString(cp.Root[:]))
	return 0
}

func run(flow string, asJSON bool, exportLedger string) error {
	// last tracks the most recently completed flow's case; -export-ledger
	// serializes its audit ledger.
	var last *investigation.Case
	export := func() error {
		if exportLedger == "" {
			return nil
		}
		if last == nil {
			return fmt.Errorf("-export-ledger: no flow ran")
		}
		return last.Ledger().WriteFile(exportLedger)
	}
	runP2P := flow == "all" || flow == "p2p"
	runWM := flow == "all" || flow == "watermark"
	runKyllo := flow == "all" || flow == "kyllo"
	runDrive := flow == "all" || flow == "drive"
	runAttr := flow == "all" || flow == "attribution"
	runExig := flow == "all" || flow == "exigent"
	if !runP2P && !runWM && !runKyllo && !runDrive && !runAttr && !runExig {
		return fmt.Errorf("unknown flow %q", flow)
	}

	if asJSON {
		var cases []report.CaseView
		if runP2P {
			res, err := investigation.RunP2PTraceback(investigation.P2PTracebackConfig{
				Seed: 1, Neighbors: 8, Sources: 3, Probes: 8,
			})
			if err != nil {
				return err
			}
			cases = append(cases, report.CaseReport(res.Case))
			last = res.Case
		}
		if runWM {
			res, err := investigation.RunWatermarkTraceback(watermark.DefaultExperimentConfig())
			if err != nil {
				return err
			}
			cases = append(cases, report.CaseReport(res.Case))
			last = res.Case
		}
		if runKyllo {
			res, err := investigation.RunKylloDemo()
			if err != nil {
				return err
			}
			cases = append(cases, report.CaseReport(res.Case))
			last = res.Case
		}
		if runDrive {
			for _, withWarrant := range []bool{true, false} {
				res, err := investigation.RunDriveExam(withWarrant)
				if err != nil {
					return err
				}
				cases = append(cases, report.CaseReport(res.Case))
				last = res.Case
			}
		}
		if runAttr {
			for _, exclusive := range []bool{true, false} {
				res, err := investigation.RunAttributionExam(exclusive)
				if err != nil {
					return err
				}
				cases = append(cases, report.CaseReport(res.Case))
				last = res.Case
			}
		}
		if runExig {
			for _, threat := range []investigation.DeviceThreat{{RemoteWipeObserved: true}, {}} {
				res, err := investigation.RunExigentSeizure(threat)
				if err != nil {
					return err
				}
				cases = append(cases, report.CaseReport(res.Case))
				last = res.Case
			}
		}
		if err := export(); err != nil {
			return err
		}
		return report.WriteJSON(os.Stdout, cases)
	}

	if runP2P {
		res, err := investigation.RunP2PTraceback(investigation.P2PTracebackConfig{
			Seed: 1, Neighbors: 8, Sources: 3, Probes: 8,
		})
		if err != nil {
			return err
		}
		last = res.Case
		fmt.Println("================ SECTION IV-A: P2P TIMING TRACEBACK ================")
		fmt.Print(res.Case.Report())
		fmt.Printf("Identified subscribers: %d\n", len(res.Identified))
		for _, s := range res.Identified {
			fmt.Printf("  - %s, %s\n", s.Name, s.Street)
		}
		admissible := 0
		for _, a := range res.Hearing {
			if a.Admissible() {
				admissible++
			}
		}
		fmt.Printf("Suppression hearing: %d/%d items admissible\n\n", admissible, len(res.Hearing))
	}

	if runWM {
		res, err := investigation.RunWatermarkTraceback(watermark.DefaultExperimentConfig())
		if err != nil {
			return err
		}
		last = res.Case
		fmt.Println("================ SECTION IV-B: DSSS WATERMARK TRACEBACK ================")
		fmt.Print(res.Case.Report())
		fmt.Printf("Watermark: detected=%v Z=%.1f BER=%.2f; baseline corr=%.2f\n",
			res.Experiment.Detected, res.Experiment.Watermark.Z,
			res.Experiment.Watermark.BER, res.Experiment.BaselineCorr)
		fmt.Printf("Rate collection required process: %s (non-content — no wiretap order)\n\n",
			res.Experiment.RequiredProcess)
	}

	if runKyllo {
		res, err := investigation.RunKylloDemo()
		if err != nil {
			return err
		}
		last = res.Case
		fmt.Println("================ KYLLO DEMO: ILLEGAL TECHNIQUE, SUPPRESSED FRUITS ================")
		fmt.Print(res.Case.Report())
		for _, a := range res.Hearing {
			fmt.Printf("  %s: %s\n", a.ItemID, a.Status)
		}
		fmt.Println("\n--- suppression opinion ---")
		fmt.Println(opinion.Write(res.Case, "United States v. Kyllo-Redux, No. 12-cr-0533"))
	}

	if runDrive {
		for _, withWarrant := range []bool{true, false} {
			res, err := investigation.RunDriveExam(withWarrant)
			if err != nil {
				return err
			}
			last = res.Case
			label := "WITH second warrant (Crist satisfied)"
			if !withWarrant {
				label = "WITHOUT second warrant (Crist violated)"
			}
			fmt.Printf("================ DRIVE EXAM %s ================\n", label)
			fmt.Print(res.Case.Report())
			fmt.Printf("hash hits: %d (image sha256 %s…)\n", len(res.Hits), res.ImageHash[:12])
			admissible := 0
			for _, a := range res.Hearing {
				if a.Admissible() {
					admissible++
				}
			}
			fmt.Printf("Suppression hearing: %d/%d items admissible\n\n", admissible, len(res.Hearing))
		}
	}

	if runAttr {
		for _, exclusive := range []bool{true, false} {
			res, err := investigation.RunAttributionExam(exclusive)
			if err != nil {
				return err
			}
			last = res.Case
			label := "EXCLUSIVE attribution"
			if !exclusive {
				label = "SHARED machine (non-exclusive)"
			}
			fmt.Printf("================ ATTRIBUTION EXAM: %s ================\n", label)
			fmt.Print(res.Case.Report())
			fmt.Printf("warrant issued: %v; malware clean: %v; knowledge findings: %d\n\n",
				res.WarrantIssued, res.Report.MalwareClean, len(res.Report.Knowledge))
		}
	}

	if runExig {
		for _, threat := range []investigation.DeviceThreat{
			{RemoteWipeObserved: true},
			{},
		} {
			res, err := investigation.RunExigentSeizure(threat)
			if err != nil {
				return err
			}
			last = res.Case
			label := "EXIGENT (destroy command observed)"
			if !threat.Exigent() {
				label = "NO EXIGENCY (warrantless seizure)"
			}
			fmt.Printf("================ EXIGENT SEIZURE: %s ================\n", label)
			fmt.Print(res.Case.Report())
			admissible := 0
			for _, a := range res.Hearing {
				if a.Admissible() {
					admissible++
				}
			}
			fmt.Printf("seizure lawful: %v; hearing: %d/%d admissible\n\n",
				res.SeizureLawful, admissible, len(res.Hearing))
		}
	}
	return export()
}
