package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"lawgate/internal/experiment"
	"lawgate/internal/watermark"
)

func TestNoiseSweepOnePoint(t *testing.T) {
	base := watermark.DefaultExperimentConfig()
	base.Bits = 2
	sw := watermark.NoiseSweep(base, 1, 1, []float64{0.5})
	series, err := experiment.Runner{Workers: 2}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	p := series.Points[0]
	if tpr := p.Metric(watermark.MetricDSSSTP).Mean; tpr != 1 {
		t.Errorf("TPR = %v, want 1 at moderate noise", tpr)
	}
	if fpr := p.Metric(watermark.MetricDSSSFP).Mean; fpr != 0 {
		t.Errorf("FPR = %v, want 0", fpr)
	}
	if z := p.Metric(watermark.MetricZ).Mean; z < watermark.DefaultZThreshold {
		t.Errorf("mean Z = %v below detection threshold", z)
	}
}

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke sweep too slow for -short")
	}
	var buf bytes.Buffer
	o := options{trials: 1, workers: 2, seed: 1, smoke: true}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

// TestRunFaultProfileAddsDegradationSeries: -faults appends the loss
// and jitter series, deterministically across worker counts.
func TestRunFaultProfileAddsDegradationSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke sweep too slow for -short")
	}
	var blobs [][]byte
	for _, workers := range []int{1, 4} {
		o := options{trials: 1, workers: workers, seed: 1, smoke: true, faults: "lossy", json: true}
		var buf bytes.Buffer
		if err := run(&buf, o); err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, buf.Bytes())
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Error("lossy smoke JSON differs between workers=1 and workers=4")
	}
	var report experiment.Report
	if err := json.Unmarshal(blobs[0], &report); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range report.Series {
		names = append(names, s.Sweep)
	}
	want := "watermark-code-length watermark-noise watermark-amplitude watermark-lineup watermark-loss watermark-jitter"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("series = %q, want %q", got, want)
	}
}

// TestRunMaxStepsCutsTrialsOff: a tiny step budget fails the run with a
// joined error reporting the partial acquisition.
func TestRunMaxStepsCutsTrialsOff(t *testing.T) {
	o := options{trials: 1, workers: 2, seed: 1, smoke: true, maxSteps: 50}
	err := run(io.Discard, o)
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("err = %v, want step-budget error", err)
	}
	if !strings.Contains(err.Error(), "partial acquisition") {
		t.Errorf("err = %v, want partial-acquisition accounting", err)
	}
}

// TestRunBadFaultProfile: an unknown profile is a startup error.
func TestRunBadFaultProfile(t *testing.T) {
	o := options{trials: 1, workers: 1, seed: 1, smoke: true, faults: "nope"}
	if err := run(io.Discard, o); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("err = %v, want unknown-profile error naming it", err)
	}
}
