package main

import (
	"testing"

	"lawgate/internal/watermark"
)

func TestSweepOnePoint(t *testing.T) {
	base := watermark.DefaultExperimentConfig()
	base.Bits = 2
	p, err := sweep(base, 1, func(c *watermark.ExperimentConfig) {
		c.NoiseRate = 0.5
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.tpr != 1 {
		t.Errorf("TPR = %v, want 1 at moderate noise", p.tpr)
	}
	if p.fpr != 0 {
		t.Errorf("FPR = %v, want 0", p.fpr)
	}
	if p.meanZ < watermark.DefaultZThreshold {
		t.Errorf("mean Z = %v below detection threshold", p.meanZ)
	}
}
