package main

import (
	"bytes"
	"context"
	"testing"

	"lawgate/internal/experiment"
	"lawgate/internal/watermark"
)

func TestNoiseSweepOnePoint(t *testing.T) {
	base := watermark.DefaultExperimentConfig()
	base.Bits = 2
	sw := watermark.NoiseSweep(base, 1, 1, []float64{0.5})
	series, err := experiment.Runner{Workers: 2}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	p := series.Points[0]
	if tpr := p.Metric(watermark.MetricDSSSTP).Mean; tpr != 1 {
		t.Errorf("TPR = %v, want 1 at moderate noise", tpr)
	}
	if fpr := p.Metric(watermark.MetricDSSSFP).Mean; fpr != 0 {
		t.Errorf("FPR = %v, want 0", fpr)
	}
	if z := p.Metric(watermark.MetricZ).Mean; z < watermark.DefaultZThreshold {
		t.Errorf("mean Z = %v below detection threshold", z)
	}
}

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke sweep too slow for -short")
	}
	var buf bytes.Buffer
	o := options{trials: 1, workers: 2, seed: 1, smoke: true}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}
