// Command tracewatermark runs the Section IV-B experiment sweep: DSSS
// PN-code flow-watermark detection through a Tor-like circuit, against the
// naive packet-count-correlation baseline, as functions of code length,
// cross-traffic noise, and modulation amplitude, plus the K-candidate
// lineup. Experiment E3.
//
// Trials run in parallel on the shared experiment harness; results are
// byte-identical for a given -seed regardless of -workers.
//
// Usage:
//
//	tracewatermark [-trials T] [-workers W] [-seed S] [-json|-csv] [-smoke]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"lawgate/internal/experiment"
	"lawgate/internal/watermark"
)

func main() {
	var o options
	flag.IntVar(&o.trials, "trials", 5, "seeds per sweep point")
	flag.IntVar(&o.workers, "workers", 0, "parallel trial workers (0 = all CPUs)")
	flag.Int64Var(&o.seed, "seed", 1, "master seed; per-trial seeds derive from it")
	flag.BoolVar(&o.json, "json", false, "emit results as JSON instead of text")
	flag.BoolVar(&o.csv, "csv", false, "emit results as CSV instead of text")
	flag.BoolVar(&o.smoke, "smoke", false, "tiny CI sweep: 2-bit payload, 1 trial, 1 point per series")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "tracewatermark:", err)
		os.Exit(1)
	}
}

type options struct {
	trials, workers  int
	seed             int64
	json, csv, smoke bool
}

// normalized applies the -smoke grid reductions to the options themselves
// so the rendered header always matches the grid actually run.
func (o options) normalized() options {
	if o.smoke {
		o.trials = 1
	}
	return o
}

// sweeps declares the E3 series for the given options.
func sweeps(o options) []experiment.Sweep {
	base := watermark.DefaultExperimentConfig()
	degrees := []int{5, 6, 7, 8, 9}
	noises := []float64{0, 0.5, 1, 2, 4}
	amps := []float64{0.05, 0.10, 0.20, 0.30, 0.50}
	candidates := []int{2, 4, 8}
	reps := o.trials
	lineup := watermark.DefaultLineupConfig()
	if o.smoke {
		base.Bits = 2
		degrees = []int{5}
		noises = []float64{0.5}
		amps = []float64{0.30}
		candidates = []int{2}
		lineup.Bits = 2
	}
	return []experiment.Sweep{
		watermark.CodeSweep(base, reps, o.seed, degrees),
		watermark.NoiseSweep(base, reps, o.seed, noises),
		watermark.AmplitudeSweep(base, reps, o.seed, amps),
		watermark.LineupSweep(lineup, reps, o.seed, candidates),
	}
}

func run(w io.Writer, o options) error {
	o = o.normalized()
	runner := experiment.Runner{Workers: o.workers}
	report := experiment.Report{Name: "E3-dsss-watermark-traceback"}
	for _, sw := range sweeps(o) {
		series, err := runner.Run(context.Background(), sw)
		if err != nil {
			return err
		}
		report.Series = append(report.Series, series)
	}
	switch {
	case o.json:
		return report.WriteJSON(w)
	case o.csv:
		return report.WriteCSV(w)
	}
	return render(w, o, report)
}

func render(w io.Writer, o options, report experiment.Report) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E3 — DSSS watermark traceback vs baseline correlation (%d trials/point, seed %d)\n",
		o.trials, o.seed)
	fmt.Fprintln(tw, "Legal posture: court order suffices — packet rates are non-content (no wiretap order).")
	titles := map[string]string{
		"watermark-code-length": "detection vs PN-code length (noise=1.0)",
		"watermark-noise":       "detection vs cross-traffic noise",
		"watermark-amplitude":   "detection vs modulation amplitude (noise=1.0)",
		"watermark-lineup":      "lineup identification — which of K candidates is the downloader",
	}
	for _, s := range report.Series {
		fmt.Fprintf(tw, "\nSeries %s: %s\n", s.Sweep, titles[s.Sweep])
		if s.Sweep == "watermark-lineup" {
			fmt.Fprintln(tw, "point\tcorrect-ID rate [95%CI]")
			for _, p := range s.Points {
				c := p.Metric(watermark.MetricCorrect)
				fmt.Fprintf(tw, "%s\t%.2f [%.2f,%.2f]\n", p.Label, c.Mean, c.WilsonLo, c.WilsonHi)
			}
			continue
		}
		fmt.Fprintln(tw, "point\tDSSS-TPR [95%CI]\tDSSS-FPR\tmean-Z ±CI\tbase-TPR\tbase-FPR")
		for _, p := range s.Points {
			tp := p.Metric(watermark.MetricDSSSTP)
			z := p.Metric(watermark.MetricZ)
			fmt.Fprintf(tw, "%s\t%.2f [%.2f,%.2f]\t%.2f\t%.1f ±%.1f\t%.2f\t%.2f\n",
				p.Label, tp.Mean, tp.WilsonLo, tp.WilsonHi,
				p.Metric(watermark.MetricDSSSFP).Mean, z.Mean, z.CI95,
				p.Metric(watermark.MetricBaselineTP).Mean, p.Metric(watermark.MetricBaselineFP).Mean)
		}
	}
	return tw.Flush()
}
