// Command tracewatermark runs the Section IV-B experiment sweep: DSSS
// PN-code flow-watermark detection through a Tor-like circuit, against the
// naive packet-count-correlation baseline, as functions of code length,
// cross-traffic noise, and modulation amplitude, plus the K-candidate
// lineup. Experiment E3.
//
// Trials run in parallel on the shared experiment harness; results are
// byte-identical for a given -seed regardless of -workers.
//
// With -faults PROFILE the sweeps run on a degraded substrate (see
// -faults help for the profile names) and two degradation series are
// appended: detection vs injected packet loss and vs reorder jitter.
// -trial-timeout and -max-steps bound each trial; a trial cut off by
// either bound fails the run with a joined error naming it.
//
// With -partitions P the load-scale series is appended: detection on
// the campus+ISP+Tor composite topology under growing background load,
// run on the sharded parallel engine with P partitions. The emitted
// results are identical for every P — only wall-clock time changes —
// so CI compares runs at different partition counts.
//
// Usage:
//
//	tracewatermark [-trials T] [-workers W] [-seed S]
//	               [-faults PROFILE] [-partitions P] [-trial-timeout D] [-max-steps N]
//	               [-cpuprofile FILE] [-memprofile FILE]
//	               [-json|-csv] [-smoke]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"lawgate/internal/experiment"
	"lawgate/internal/faults"
	"lawgate/internal/profiling"
	"lawgate/internal/watermark"
)

func main() {
	var o options
	flag.IntVar(&o.trials, "trials", 5, "seeds per sweep point")
	flag.IntVar(&o.workers, "workers", 0, "parallel trial workers (0 = all CPUs)")
	flag.Int64Var(&o.seed, "seed", 1, "master seed; per-trial seeds derive from it")
	flag.StringVar(&o.faults, "faults", "",
		"fault profile ("+strings.Join(faults.Profiles(), ", ")+"); adds loss and jitter degradation series")
	flag.IntVar(&o.partitions, "partitions", 0,
		"run the load-scale series on the sharded engine with this many partitions (0 = skip)")
	flag.DurationVar(&o.trialTimeout, "trial-timeout", 0, "wall-clock bound per trial (0 = none)")
	flag.Int64Var(&o.maxSteps, "max-steps", 0, "simulator event bound per trial (0 = default)")
	flag.BoolVar(&o.json, "json", false, "emit results as JSON instead of text")
	flag.BoolVar(&o.csv, "csv", false, "emit results as CSV instead of text")
	flag.BoolVar(&o.smoke, "smoke", false, "tiny CI sweep: 2-bit payload, 1 trial, 1 point per series")
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()
	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracewatermark:", err)
		os.Exit(1)
	}
	err = run(os.Stdout, o)
	if stopErr := stop(); err == nil {
		err = stopErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracewatermark:", err)
		os.Exit(1)
	}
}

type options struct {
	trials, workers  int
	partitions       int
	seed             int64
	faults           string
	trialTimeout     time.Duration
	maxSteps         int64
	json, csv, smoke bool
}

// normalized applies the -smoke grid reductions to the options themselves
// so the rendered header always matches the grid actually run.
func (o options) normalized() options {
	if o.smoke {
		o.trials = 1
	}
	return o
}

// sweeps declares the E3 series for the given options. Naming a fault
// profile appends the loss and jitter degradation series on top of it.
func sweeps(o options) ([]experiment.Sweep, error) {
	base := watermark.DefaultExperimentConfig()
	base.MaxSteps = o.maxSteps
	degrees := []int{5, 6, 7, 8, 9}
	noises := []float64{0, 0.5, 1, 2, 4}
	amps := []float64{0.05, 0.10, 0.20, 0.30, 0.50}
	candidates := []int{2, 4, 8}
	losses := []float64{0, 0.05, 0.10, 0.20, 0.30}
	jitters := []time.Duration{0, 5 * time.Millisecond, 10 * time.Millisecond,
		20 * time.Millisecond, 40 * time.Millisecond}
	reps := o.trials
	lineup := watermark.DefaultLineupConfig()
	if o.smoke {
		base.Bits = 2
		degrees = []int{5}
		noises = []float64{0.5}
		amps = []float64{0.30}
		candidates = []int{2}
		losses = []float64{0, 0.20}
		jitters = []time.Duration{0, 20 * time.Millisecond}
		lineup.Bits = 2
	}
	if o.faults != "" {
		plan, err := faults.Profile(o.faults)
		if err != nil {
			return nil, err
		}
		base.Faults = plan
	}
	out := []experiment.Sweep{
		watermark.CodeSweep(base, reps, o.seed, degrees),
		watermark.NoiseSweep(base, reps, o.seed, noises),
		watermark.AmplitudeSweep(base, reps, o.seed, amps),
		watermark.LineupSweep(lineup, reps, o.seed, candidates),
	}
	if o.faults != "" {
		out = append(out,
			watermark.LossSweep(base, reps, o.seed, losses),
			watermark.JitterSweep(base, reps, o.seed, jitters),
		)
	}
	if o.partitions > 0 {
		scale := watermark.DefaultScaleConfig()
		scale.Partitions = o.partitions
		load := base
		hostCounts := []int{32, 96, 256}
		if o.smoke {
			load.CodeDegree = 5
			scale.HostsPerCampus = 4
			scale.TorRelays = 2
			hostCounts = []int{8, 16}
		}
		out = append(out, watermark.ScaleSweep(load, scale, reps, o.seed, hostCounts))
	}
	return out, nil
}

func run(w io.Writer, o options) error {
	o = o.normalized()
	sws, err := sweeps(o)
	if err != nil {
		return err
	}
	runner := experiment.Runner{Workers: o.workers, TrialTimeout: o.trialTimeout}
	report := experiment.Report{Name: "E3-dsss-watermark-traceback"}
	for _, sw := range sws {
		series, err := runner.Run(context.Background(), sw)
		if err != nil {
			return fmt.Errorf("sweep %s: %w", sw.Name, err)
		}
		report.Series = append(report.Series, series)
	}
	switch {
	case o.json:
		return report.WriteJSON(w)
	case o.csv:
		return report.WriteCSV(w)
	}
	return render(w, o, report)
}

func render(w io.Writer, o options, report experiment.Report) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "E3 — DSSS watermark traceback vs baseline correlation (%d trials/point, seed %d)\n",
		o.trials, o.seed)
	fmt.Fprintln(tw, "Legal posture: court order suffices — packet rates are non-content (no wiretap order).")
	if o.faults != "" {
		fmt.Fprintf(tw, "Fault profile: %s\n", o.faults)
	}
	titles := map[string]string{
		"watermark-code-length": "detection vs PN-code length (noise=1.0)",
		"watermark-noise":       "detection vs cross-traffic noise",
		"watermark-amplitude":   "detection vs modulation amplitude (noise=1.0)",
		"watermark-lineup":      "lineup identification — which of K candidates is the downloader",
		"watermark-loss":        "detection vs injected packet loss (degradation, noise=1.0)",
		"watermark-jitter":      "detection vs injected reorder jitter (degradation, noise=1.0)",
		"watermark-load":        "detection vs background hosts on the shared trunk (composite topology)",
	}
	for _, s := range report.Series {
		fmt.Fprintf(tw, "\nSeries %s: %s\n", s.Sweep, titles[s.Sweep])
		if s.Sweep == "watermark-lineup" {
			fmt.Fprintln(tw, "point\tcorrect-ID rate [95%CI]")
			for _, p := range s.Points {
				c := p.Metric(watermark.MetricCorrect)
				fmt.Fprintf(tw, "%s\t%.2f [%.2f,%.2f]\n", p.Label, c.Mean, c.WilsonLo, c.WilsonHi)
			}
			continue
		}
		fmt.Fprintln(tw, "point\tDSSS-TPR [95%CI]\tDSSS-FPR\tmean-Z ±CI\tbase-TPR\tbase-FPR")
		for _, p := range s.Points {
			tp := p.Metric(watermark.MetricDSSSTP)
			z := p.Metric(watermark.MetricZ)
			fmt.Fprintf(tw, "%s\t%.2f [%.2f,%.2f]\t%.2f\t%.1f ±%.1f\t%.2f\t%.2f\n",
				p.Label, tp.Mean, tp.WilsonLo, tp.WilsonHi,
				p.Metric(watermark.MetricDSSSFP).Mean, z.Mean, z.CI95,
				p.Metric(watermark.MetricBaselineTP).Mean, p.Metric(watermark.MetricBaselineFP).Mean)
		}
	}
	return tw.Flush()
}
