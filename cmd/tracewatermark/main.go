// Command tracewatermark runs the Section IV-B experiment sweep: DSSS
// PN-code flow-watermark detection through a Tor-like circuit, against the
// naive packet-count-correlation baseline, as functions of code length,
// cross-traffic noise, and modulation amplitude. Experiment E3.
//
// Usage:
//
//	tracewatermark [-trials T]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"lawgate/internal/stats"
	"lawgate/internal/watermark"
)

func main() {
	trials := flag.Int("trials", 5, "seeds averaged per configuration")
	flag.Parse()
	if err := run(*trials); err != nil {
		fmt.Fprintln(os.Stderr, "tracewatermark:", err)
		os.Exit(1)
	}
}

type point struct {
	tpr, fpr, baseTPR, baseFPR, meanZ float64
	// tprLo and tprHi bound the DSSS TPR with a 95% Wilson interval;
	// zCI is the 95% half-width on the mean Z.
	tprLo, tprHi, zCI float64
}

func sweep(base watermark.ExperimentConfig, trials int, mutate func(*watermark.ExperimentConfig)) (point, error) {
	var p point
	var detections int
	zs := make([]float64, 0, trials)
	for t := 0; t < trials; t++ {
		guilty := base
		guilty.Guilty = true
		guilty.Seed = int64(100 + t)
		mutate(&guilty)
		resG, err := watermark.RunExperiment(guilty)
		if err != nil {
			return point{}, err
		}
		innocent := guilty
		innocent.Guilty = false
		innocent.Seed = int64(500 + t)
		resI, err := watermark.RunExperiment(innocent)
		if err != nil {
			return point{}, err
		}
		if resG.Detected {
			p.tpr++
			detections++
		}
		if resI.Detected {
			p.fpr++
		}
		if resG.BaselineDetected {
			p.baseTPR++
		}
		if resI.BaselineDetected {
			p.baseFPR++
		}
		zs = append(zs, resG.Watermark.Z)
	}
	n := float64(trials)
	p.tpr /= n
	p.fpr /= n
	p.baseTPR /= n
	p.baseFPR /= n
	var err error
	if p.tprLo, p.tprHi, err = stats.Wilson(detections, trials); err != nil {
		return point{}, err
	}
	zsum, err := stats.Summarize(zs)
	if err != nil {
		return point{}, err
	}
	p.meanZ = zsum.Mean
	p.zCI = zsum.CI95
	return p, nil
}

func run(trials int) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "E3 — DSSS watermark traceback vs baseline correlation (%d trials/point)\n", trials)
	fmt.Fprintln(w, "Legal posture: court order suffices — packet rates are non-content (no wiretap order).")

	base := watermark.DefaultExperimentConfig()

	fmt.Fprintln(w, "\nSeries 1: detection vs PN-code length (noise=1.0)")
	fmt.Fprintln(w, "code\tDSSS-TPR [95%CI]\tDSSS-FPR\tmean-Z ±CI\tbase-TPR\tbase-FPR")
	for _, degree := range []int{5, 6, 7, 8, 9} {
		p, err := sweep(base, trials, func(c *watermark.ExperimentConfig) {
			c.CodeDegree = degree
			c.NoiseRate = 1.0
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%.2f [%.2f,%.2f]\t%.2f\t%.1f ±%.1f\t%.2f\t%.2f\n",
			(1<<degree)-1, p.tpr, p.tprLo, p.tprHi, p.fpr, p.meanZ, p.zCI, p.baseTPR, p.baseFPR)
	}

	fmt.Fprintln(w, "\nSeries 2: detection vs cross-traffic noise (code=127)")
	fmt.Fprintln(w, "noise\tDSSS-TPR [95%CI]\tDSSS-FPR\tmean-Z ±CI\tbase-TPR\tbase-FPR")
	for _, noise := range []float64{0, 0.5, 1, 2, 4} {
		noise := noise
		p, err := sweep(base, trials, func(c *watermark.ExperimentConfig) {
			c.NoiseRate = noise
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.1f\t%.2f [%.2f,%.2f]\t%.2f\t%.1f ±%.1f\t%.2f\t%.2f\n",
			noise, p.tpr, p.tprLo, p.tprHi, p.fpr, p.meanZ, p.zCI, p.baseTPR, p.baseFPR)
	}

	fmt.Fprintln(w, "\nSeries 3: detection vs modulation amplitude (code=127, noise=1.0)")
	fmt.Fprintln(w, "amplitude\tDSSS-TPR [95%CI]\tDSSS-FPR\tmean-Z ±CI")
	for _, amp := range []float64{0.05, 0.10, 0.20, 0.30, 0.50} {
		amp := amp
		p, err := sweep(base, trials, func(c *watermark.ExperimentConfig) {
			c.Amplitude = amp
			c.NoiseRate = 1.0
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.2f\t%.2f [%.2f,%.2f]\t%.2f\t%.1f ±%.1f\n", amp, p.tpr, p.tprLo, p.tprHi, p.fpr, p.meanZ, p.zCI)
	}

	fmt.Fprintln(w, "\nSeries 4: lineup identification — which of K candidates is the downloader")
	fmt.Fprintln(w, "candidates\tcorrect-ID rate [95%CI]")
	for _, k := range []int{2, 4, 8} {
		correct := 0
		for tr := 0; tr < trials; tr++ {
			lc := watermark.DefaultLineupConfig()
			lc.Suspects = k
			lc.Guilty = tr % k
			lc.Seed = int64(700 + tr)
			res, err := watermark.RunLineup(lc)
			if err != nil {
				return err
			}
			if res.Correct {
				correct++
			}
		}
		lo, hi, err := stats.Wilson(correct, trials)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%.2f [%.2f,%.2f]\n", k, float64(correct)/float64(trials), lo, hi)
	}
	return w.Flush()
}
