// drive-exam: Table 1 scenes 18 and 19 as a narrated example — a lawfully
// seized drive is forensically imaged with hash verification, then
// hash-searched for known contraband. Per United States v. Crist, hashing
// the entire drive for matter outside the original warrant's scope is a
// NEW search: with a second warrant everything survives the suppression
// hearing; without it the hash-search results are excluded even though the
// technique worked perfectly.
//
// Run with:
//
//	go run ./examples/drive-exam
package main

import (
	"fmt"
	"os"

	"lawgate/internal/investigation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drive-exam:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, withWarrant := range []bool{true, false} {
		res, err := investigation.RunDriveExam(withWarrant)
		if err != nil {
			return err
		}
		if withWarrant {
			fmt.Println("Scenario A — examiners obtain a second warrant for the hash search:")
		} else {
			fmt.Println("Scenario B — examiners hash the whole drive on the seizure warrant alone:")
		}
		fmt.Printf("  forensic image verified: sha256 %s…\n", res.ImageHash[:16])
		fmt.Printf("  hash search found %d known-contraband matches", len(res.Hits))
		for _, h := range res.Hits {
			if h.Deleted {
				fmt.Printf(" (one recovered from deleted space)")
				break
			}
		}
		fmt.Println()
		if withWarrant {
			fmt.Printf("  warrant execution: %d seized in scope, %d plain-view, %d left untouched\n",
				len(res.Execution.Seized), len(res.Execution.PlainView), len(res.Execution.Left))
		}
		admissible := 0
		for _, a := range res.Hearing {
			if a.Admissible() {
				admissible++
			}
		}
		fmt.Printf("  suppression hearing: %d/%d items admissible\n", admissible, len(res.Hearing))
		if !withWarrant {
			fmt.Println("  -> the technique worked, but its fruits are excluded: the paper's warning")
		}
		fmt.Println()
	}
	return nil
}
