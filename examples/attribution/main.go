// attribution: the paper's § III-A-2 identification goals as a narrated
// example — prove which individual put the contraband on a shared
// computer, rule out the trojan defense, show subject-matter knowledge —
// and render the resulting suppression posture as a judicial opinion.
//
// Run with:
//
//	go run ./examples/attribution
package main

import (
	"fmt"
	"os"

	"lawgate"
	"lawgate/internal/opinion"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attribution:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, exclusive := range []bool{true, false} {
		res, err := lawgate.RunAttributionExam(exclusive)
		if err != nil {
			return err
		}
		if exclusive {
			fmt.Println("Scenario A — login records place the suspect ALONE at the keyboard:")
		} else {
			fmt.Println("Scenario B — a housemate's session overlaps the contraband's creation:")
		}
		for _, a := range res.Report.Actors {
			fmt.Printf("  actor: %s created %s (exclusive=%v", a.User, a.Path, a.Exclusive)
			if len(a.OthersPresent) > 0 {
				fmt.Printf(", others present: %v", a.OthersPresent)
			}
			fmt.Println(")")
		}
		fmt.Printf("  trojan defense rebutted (machine clean): %v\n", res.Report.MalwareClean)
		for _, k := range res.Report.Knowledge {
			fmt.Printf("  knowledge: %s researched %v at %s\n", k.User, k.MatchedTerms, k.URL)
		}
		fmt.Printf("  derived facts: %d; warrant issued: %v\n\n", len(res.Report.Facts), res.WarrantIssued)
	}

	// Render the exclusive case's hearing as an opinion.
	res, err := lawgate.RunAttributionExam(true)
	if err != nil {
		return err
	}
	fmt.Println(opinion.Write(res.Case, "United States v. Doe, No. 12-cr-0412"))
	return nil
}
