// p2p-traceback: the paper's Section IV-A investigation as a narrated
// example — join an anonymous filesharing overlay as an ordinary peer,
// classify neighbors as sources vs. forwarders by response timing (no
// warrant, court order, or subpoena needed), subpoena the ISP for the
// sources' subscriber records, and convert the IP attribution into a
// search warrant.
//
// Run with:
//
//	go run ./examples/p2p-traceback
package main

import (
	"fmt"
	"os"
	"sort"

	"lawgate"
	"lawgate/internal/netsim"
	"lawgate/internal/p2p"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "p2p-traceback:", err)
		os.Exit(1)
	}
}

func run() error {
	// First, confirm the legal posture: the engine agrees with the
	// paper that the timing attack needs no process.
	engine := lawgate.NewEngine()
	for _, cs := range lawgate.CaseStudies() {
		if cs.ID != "IV-A" {
			continue
		}
		r, err := engine.Evaluate(cs.Action)
		if err != nil {
			return err
		}
		fmt.Printf("Legal check (%s): requires %s — %s\n\n", cs.ID, r.Required, r.Rationale[0])
	}

	// Run the investigation end to end.
	res, err := lawgate.RunP2PTraceback(lawgate.P2PTracebackConfig{
		Seed:      42,
		Neighbors: 10,
		Sources:   4,
		Probes:    8,
	})
	if err != nil {
		return err
	}

	fmt.Println("Neighbor classification (timing attack):")
	ids := make([]string, 0, len(res.Verdicts))
	for id := range res.Verdicts {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		v := res.Verdicts[netsim.NodeID(id)]
		marker := " "
		if v == p2p.VerdictSource {
			marker = "*"
		}
		fmt.Printf("  %s %-10s %s\n", marker, id, v)
	}

	fmt.Println("\nSubscribers identified by subpoena:")
	for _, s := range res.Identified {
		fmt.Printf("  - %s, %s (account %s)\n", s.Name, s.Street, s.Account)
	}

	admissible := 0
	for _, a := range res.Hearing {
		if a.Admissible() {
			admissible++
		}
	}
	fmt.Printf("\nSuppression hearing: %d/%d items admissible\n", admissible, len(res.Hearing))
	fmt.Printf("Held process at close: %s\n", res.Case.HeldProcess())
	return nil
}
