// Quickstart: evaluate an investigative step against the lawgate engine,
// acquire evidence under the right process, and survive the suppression
// hearing.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"lawgate"
	"lawgate/internal/court"
	"lawgate/internal/legal"
	"lawgate/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Ask the engine what a planned acquisition requires. Here:
	// logging full packets at an ISP (Table 1 scene 8).
	engine := lawgate.NewEngine()
	s, err := scenario.ByNumber(8)
	if err != nil {
		return err
	}
	ruling, err := engine.Evaluate(s.Action)
	if err != nil {
		return err
	}
	fmt.Printf("Scene 8: %s\n", s.Description)
	fmt.Printf("  paper says: %s; engine says: %s under the %s\n",
		s.Answer(), ruling.Required, ruling.Regime)
	for _, reason := range ruling.Rationale {
		fmt.Printf("  · %s\n", reason)
	}

	// 2. Open a case, build the showing, and obtain process.
	c := lawgate.NewCase("quickstart")
	c.AddFact(court.Fact{
		Kind:        court.FactIPAttribution,
		Description: "victim logs attribute the attack to the suspect's IP; ISP resolved the subscriber",
	})
	if _, err := c.ApplyFor(legal.ProcessSearchWarrant, "22 Birch Rd", []string{"computers"}); err != nil {
		return err
	}

	// 3. Acquire under that process and verify everything holds up.
	seize := legal.Action{
		Name:   "seize-computer",
		Actor:  legal.ActorGovernment,
		Timing: legal.TimingStored,
		Data:   legal.DataDeviceContents,
		Source: legal.SourceTargetDevice,
	}
	item, err := c.Acquire("suspect laptop", []byte("disk image bytes"), seize)
	if err != nil {
		return err
	}
	fmt.Printf("\nAcquired %s (sha256 %s…), lawful=%v\n",
		item.ID, item.SHA256[:12], item.LawfullyAcquired())

	for _, a := range c.SuppressionHearing() {
		fmt.Printf("hearing: %s — %s\n", a.ItemID, a.Status)
	}
	if err := c.VerifyCustody(); err != nil {
		return err
	}
	fmt.Println("chain of custody verified")
	return nil
}
