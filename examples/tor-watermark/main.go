// tor-watermark: the paper's Section IV-B investigation as a narrated
// example — law enforcement runs a seized contraband server, watermarks
// its response rate with a long PN code, and confirms the suspect at the
// far end of a Tor-like circuit by despreading packet counts collected at
// the suspect's ISP under a court order (rates are non-content, so no
// Title III wiretap order is needed).
//
// Run with:
//
//	go run ./examples/tor-watermark
package main

import (
	"fmt"
	"os"

	"lawgate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tor-watermark:", err)
		os.Exit(1)
	}
}

func run() error {
	// The legal posture first: rate collection needs a court order —
	// and specifically NOT a wiretap order.
	engine := lawgate.NewEngine()
	for _, cs := range lawgate.CaseStudies() {
		if cs.ID != "IV-B-1" {
			continue
		}
		r, err := engine.Evaluate(cs.Action)
		if err != nil {
			return err
		}
		fmt.Printf("Legal check (%s): requires %s under the %s\n", cs.ID, r.Required, r.Regime)
		fmt.Printf("  (they do not collect entire packets, so they do not need a wiretap order)\n\n")
	}

	// The guilty trial: the suspect really is downloading.
	cfg := lawgate.DefaultWatermarkConfig()
	guilty, err := lawgate.RunWatermarkTraceback(cfg)
	if err != nil {
		return err
	}
	g := guilty.Experiment
	fmt.Println("Trial 1 — suspect IS the downloader:")
	fmt.Printf("  DSSS: detected=%v  Z=%.1f  BER=%.2f  (threshold Z≥4)\n",
		g.Detected, g.Watermark.Z, g.Watermark.BER)
	fmt.Printf("  naive baseline correlation: %.2f (detected=%v)\n", g.BaselineCorr, g.BaselineDetected)
	fmt.Printf("  packets observed: %d at suspect ISP, %d at server\n", g.SuspectPackets, g.ServerPackets)
	fmt.Printf("  held process for the rate meter: %s\n\n", g.RequiredProcess)

	// The innocent trial: someone else downloads; the suspect's wire
	// carries only unrelated traffic.
	cfg.Guilty = false
	cfg.Seed = 99
	innocent, err := lawgate.RunWatermarkTraceback(cfg)
	if err != nil {
		return err
	}
	i := innocent.Experiment
	fmt.Println("Trial 2 — suspect is INNOCENT (decoy downloads instead):")
	fmt.Printf("  DSSS: detected=%v  Z=%.1f\n", i.Detected, i.Watermark.Z)
	fmt.Printf("  no probable cause accrues; held process stays at: %s\n\n",
		innocent.Case.HeldProcess())

	fmt.Println("Guilty-trial case narrative:")
	for _, line := range guilty.Case.Narrative() {
		fmt.Println(" ", line)
	}
	return nil
}
