// stored-comms: the paper's Section III-A-3 Alice/Bob example as runnable
// code — how a provider's SCA role (ECS, RCS, or neither) shifts with a
// message's lifecycle, what process each disclosure tier requires, and
// when a message drops out of the SCA into pure Fourth Amendment analysis.
//
// Run with:
//
//	go run ./examples/stored-comms
package main

import (
	"fmt"
	"os"
	"time"

	"lawgate/internal/legal"
	"lawgate/internal/provider"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stored-comms:", err)
		os.Exit(1)
	}
}

func run() error {
	gmail := provider.New("gmail", true)             // public provider
	uni := provider.New("charlie-university", false) // serves only its members
	gmail.AddSubscriber(provider.Subscriber{
		Account: "bob", Name: "Bob B.", Street: "7 Elm St",
		Leases: []provider.IPLease{{IP: "10.0.0.7", From: time.Now().Add(-time.Hour)}},
	})
	uni.AddSubscriber(provider.Subscriber{Account: "alice", Name: "Alice A."})

	engine := legal.NewEngine()
	show := func(p *provider.Provider, account, msgID, stage string) error {
		role, err := p.RoleFor(account, msgID)
		if err != nil {
			return err
		}
		action := legal.Action{
			Name:           "compel-" + stage,
			Actor:          legal.ActorGovernment,
			Timing:         legal.TimingStored,
			Data:           legal.DataContent,
			Source:         legal.SourceProviderStored,
			ProviderRole:   role,
			ProviderPublic: p.Public,
		}
		r, err := engine.Evaluate(action)
		if err != nil {
			return err
		}
		fmt.Printf("  %-34s provider is %-33s → %s under the %s\n",
			stage+":", role.String()+",", r.Required, r.Regime)
		return nil
	}

	fmt.Println("Alice (alice@cs.charlie.edu) emails Bob (bob@gmail.com):")
	id, err := gmail.Deliver("alice@cs.charlie.edu", "bob", "lunch?", []byte("noon at the usual place"))
	if err != nil {
		return err
	}
	if err := show(gmail, "bob", id, "unopened at gmail"); err != nil {
		return err
	}
	if err := gmail.Open("bob", id); err != nil {
		return err
	}
	if err := show(gmail, "bob", id, "opened, left stored at gmail"); err != nil {
		return err
	}

	fmt.Println("\nBob replies to Alice at the university server:")
	id2, err := uni.Deliver("bob@gmail.com", "alice", "re: lunch?", []byte("see you then"))
	if err != nil {
		return err
	}
	if err := show(uni, "alice", id2, "unopened at university"); err != nil {
		return err
	}
	if err := uni.Open("alice", id2); err != nil {
		return err
	}
	if err := show(uni, "alice", id2, "opened at university"); err != nil {
		return err
	}
	fmt.Println("  (the opened email has dropped out of the SCA: the university is neither")
	fmt.Println("   ECS nor RCS for it, so the Fourth Amendment alone governs access)")

	fmt.Println("\n§ 2703 compelled-disclosure ladder at gmail:")
	for _, tier := range []provider.Tier{
		provider.TierBasicSubscriber, provider.TierRecords, provider.TierContent,
	} {
		fmt.Printf("  %-28s requires at least: %s\n", tier, tier.RequiredProcess())
	}
	if _, err := gmail.Compel(legal.ProcessSubpoena, provider.TierContent, "bob"); err != nil {
		fmt.Printf("  compelling content with a subpoena fails: %v\n", err)
	}
	d, err := gmail.Compel(legal.ProcessSearchWarrant, provider.TierContent, "bob")
	if err != nil {
		return err
	}
	fmt.Printf("  with a warrant, %d message(s) disclosed (\"a warrant can disclose everything\")\n", len(d.Messages))

	fmt.Println("\n§ 2702 voluntary disclosure:")
	if _, err := gmail.VoluntaryDisclose(provider.TierContent, provider.RecipientGovernment, provider.BasisNone, "bob"); err != nil {
		fmt.Printf("  gmail (public) volunteering content to the government: %v\n", err)
	}
	if _, err := uni.VoluntaryDisclose(provider.TierContent, provider.RecipientGovernment, provider.BasisNone, "alice"); err == nil {
		fmt.Println("  the university (non-public) may disclose freely — § 2702 does not restrain it")
	}
	return nil
}
