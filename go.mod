module lawgate

go 1.22
