// Benchmarks regenerating the paper's evaluation artifacts, one per
// experiment in DESIGN.md's index (E1-E6), plus the ablations DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
package lawgate_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"lawgate"
	"lawgate/internal/court"
	"lawgate/internal/evidence"
	"lawgate/internal/experiment"
	"lawgate/internal/investigation"
	"lawgate/internal/legal"
	"lawgate/internal/p2p"
	"lawgate/internal/watermark"
)

// BenchmarkTable1 (E1): evaluate all twenty Table 1 scenes.
func BenchmarkTable1(b *testing.B) {
	engine := lawgate.NewEngine()
	scenes := lawgate.Table1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range scenes {
			r, err := engine.Evaluate(s.Action)
			if err != nil {
				b.Fatal(err)
			}
			if r.NeedsProcess() != s.PaperNeeds {
				b.Fatalf("scene %d diverged from the paper", s.Number)
			}
		}
	}
}

// BenchmarkP2PTimingAttack (E2): one full § IV-A classification trial per
// probe budget.
func BenchmarkP2PTimingAttack(b *testing.B) {
	for _, probes := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("probes=%d", probes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := p2p.RunExperiment(p2p.ExperimentConfig{
					Seed:      int64(i + 1),
					Neighbors: 12,
					Sources:   5,
					Probes:    probes,
					Overlay:   p2p.DefaultConfig(p2p.ModeAnonymous),
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = res.Accuracy()
			}
		})
	}
}

// BenchmarkWatermarkDetect (E3): one full § IV-B trial per code length —
// the "long PN code" ablation.
func BenchmarkWatermarkDetect(b *testing.B) {
	for _, degree := range []int{5, 7, 9} {
		b.Run(fmt.Sprintf("code=%d", (1<<degree)-1), func(b *testing.B) {
			ec := watermark.DefaultExperimentConfig()
			ec.CodeDegree = degree
			ec.Bits = 2
			for i := 0; i < b.N; i++ {
				ec.Seed = int64(i + 1)
				if _, err := watermark.RunExperiment(ec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselineCorrelation (E3 ablation): the naive comparator on
// series of the same length the watermark trial produces.
func BenchmarkBaselineCorrelation(b *testing.B) {
	n := 2400
	tx := make([]int, n)
	rx := make([]int, n)
	for i := range tx {
		tx[i] = 10 + i%7
		rx[i] = 10 + (i+3)%7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		watermark.BaselineCorrelation(tx, rx, 20)
	}
}

// BenchmarkProbableCause (E4): showing assessment and warrant issuance.
func BenchmarkProbableCause(b *testing.B) {
	now := time.Date(2012, time.June, 1, 0, 0, 0, 0, time.UTC)
	facts := []court.Fact{
		{Kind: court.FactInformantTip, ObservedAt: now},
		{Kind: court.FactAccountMembership, ObservedAt: now},
		{Kind: court.FactIntentEvidence, ObservedAt: now},
		{Kind: court.FactIPAttribution, ObservedAt: now},
	}
	c := court.NewCourt(court.WithCourtClock(func() time.Time { return now }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := court.AssessShowing(facts, now); s != legal.ShowingProbableCause {
			b.Fatal("showing regression")
		}
		if _, err := c.Apply(court.Application{
			Process: legal.ProcessSearchWarrant,
			Facts:   facts,
			Place:   "12 Oak St",
			Things:  []string{"computers"},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuppressionAnalysis (E6): taint propagation over a derivation
// chain.
func BenchmarkSuppressionAnalysis(b *testing.B) {
	for _, depth := range []int{10, 100} {
		b.Run(fmt.Sprintf("chain=%d", depth), func(b *testing.B) {
			action := legal.Action{
				Name:   "step",
				Actor:  legal.ActorGovernment,
				Timing: legal.TimingStored,
				Data:   legal.DataDeviceContents,
				Source: legal.SourceTargetDevice,
			}
			l := evidence.NewLocker()
			var prev evidence.ID
			for i := 0; i < depth; i++ {
				req := evidence.AcquireRequest{
					Description: "link",
					Action:      action,
					Held:        legal.ProcessNone, // tainted root chain
				}
				if i > 0 {
					req.Parents = []evidence.ID{prev}
				}
				it, err := l.Acquire(req)
				if err != nil {
					b.Fatal(err)
				}
				prev = it.ID
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				as := l.Assess()
				if len(as) != depth {
					b.Fatal("assessment size regression")
				}
			}
		})
	}
}

// BenchmarkCustodyChain (ablation 5): per-entry SHA-256 chaining cost and
// verification.
func BenchmarkCustodyChain(b *testing.B) {
	b.Run("append", func(b *testing.B) {
		var log evidence.CustodyLog
		now := time.Date(2012, time.June, 1, 0, 0, 0, 0, time.UTC)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			log.Append(now, "agent", evidence.EventExamined, "EV-0001", "bench")
		}
	})
	b.Run("verify-1000", func(b *testing.B) {
		var log evidence.CustodyLog
		now := time.Date(2012, time.June, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 1000; i++ {
			log.Append(now, "agent", evidence.EventExamined, "EV-0001", "bench")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := log.Verify(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEndToEndFlows (E2+E3 integration): the complete Section IV
// investigations, legal steps included.
func BenchmarkEndToEndFlows(b *testing.B) {
	b.Run("p2p-traceback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := investigation.RunP2PTraceback(investigation.P2PTracebackConfig{
				Seed: int64(i + 1), Neighbors: 8, Sources: 3, Probes: 4,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("watermark-traceback", func(b *testing.B) {
		ec := watermark.DefaultExperimentConfig()
		ec.Bits = 2
		for i := 0; i < b.N; i++ {
			ec.Seed = int64(i + 1)
			if _, err := investigation.RunWatermarkTraceback(ec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineEvaluate: raw engine throughput on a representative mix.
func BenchmarkEngineEvaluate(b *testing.B) {
	engine := legal.NewEngine()
	actions := make([]legal.Action, 0, 20)
	for _, s := range lawgate.Table1() {
		actions = append(actions, s.Action)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Evaluate(actions[i%len(actions)]); err != nil {
			b.Fatal(err)
		}
	}
}

// syntheticActions builds n distinct actions by cycling the Table 1
// scenes under fresh names — a corpus-scale workload with no duplicate
// fingerprints, so the cache cannot shortcut it.
func syntheticActions(n int) []legal.Action {
	scenes := lawgate.Table1()
	actions := make([]legal.Action, n)
	for i := range actions {
		a := scenes[i%len(scenes)].Action
		a.Name = fmt.Sprintf("synthetic-%d", i)
		actions[i] = a
	}
	return actions
}

// BenchmarkEvaluateBatch: 10k distinct actions, sequential loop vs the
// concurrent batch API. The batch path must beat sequential by >= 2x on
// multi-core hardware (the PR's acceptance criterion).
func BenchmarkEvaluateBatch(b *testing.B) {
	actions := syntheticActions(10_000)
	b.Run("sequential", func(b *testing.B) {
		engine := legal.NewEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, a := range actions {
				if _, err := engine.Evaluate(a); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		engine := legal.NewEngine()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.EvaluateBatch(ctx, actions); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEvaluateCached: re-evaluating the whole Table 1 catalog on a
// warm ruling cache vs a cache-less engine. The cached path must beat
// uncached by >= 5x (the PR's acceptance criterion).
func BenchmarkEvaluateCached(b *testing.B) {
	actions := make([]legal.Action, 0, 20)
	for _, s := range lawgate.Table1() {
		actions = append(actions, s.Action)
	}
	b.Run("uncached", func(b *testing.B) {
		engine := legal.NewEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, a := range actions {
				if _, err := engine.Evaluate(a); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		engine := legal.NewEngine(legal.WithRulingCache(0))
		for _, a := range actions { // warm the cache
			if _, err := engine.Evaluate(a); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, a := range actions {
				if _, err := engine.Evaluate(a); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkContainerDoctrine (ablation 6): scene 18 under the two
// closed-container doctrines the paper says courts disagree on.
func BenchmarkContainerDoctrine(b *testing.B) {
	hashSearch := legal.Action{
		Name:                  "hash-whole-drive",
		Actor:                 legal.ActorGovernment,
		Timing:                legal.TimingStored,
		Data:                  legal.DataDeviceContents,
		Source:                legal.SourceSeizedDevice,
		SearchBeyondAuthority: true,
	}
	b.Run("per-file", func(b *testing.B) {
		e := legal.NewEngine()
		for i := 0; i < b.N; i++ {
			r, err := e.Evaluate(hashSearch)
			if err != nil {
				b.Fatal(err)
			}
			if r.Required != legal.ProcessSearchWarrant {
				b.Fatal("per-file doctrine regression")
			}
		}
	})
	b.Run("single", func(b *testing.B) {
		e := legal.NewEngine(legal.WithContainerDoctrine(legal.ContainerSingle))
		for i := 0; i < b.N; i++ {
			r, err := e.Evaluate(hashSearch)
			if err != nil {
				b.Fatal(err)
			}
			if r.NeedsProcess() {
				b.Fatal("single-container doctrine regression")
			}
		}
	})
}

// BenchmarkAdvisor: redesign suggestions for every Table 1 scene needing
// process.
func BenchmarkAdvisor(b *testing.B) {
	engine := legal.NewEngine()
	var needs []legal.Action
	for _, s := range lawgate.Table1() {
		r, err := engine.Evaluate(s.Action)
		if err != nil {
			b.Fatal(err)
		}
		if r.NeedsProcess() {
			needs = append(needs, s.Action)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range needs {
			if _, err := engine.Advise(a); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepRunner (E2/E3 harness): the real experiment sweeps on
// the shared runner, serial vs all cores. On a 4+ core machine the
// parallel watermark sweep must beat serial by >= 2x wall-clock (the
// PR's acceptance criterion); results are byte-identical either way
// (asserted by TestSweepDeterministicAcrossWorkers in both packages).
func BenchmarkSweepRunner(b *testing.B) {
	wmBase := watermark.DefaultExperimentConfig()
	wmBase.Bits = 2
	noises := []float64{0, 0.5, 1, 2}
	p2pBase := p2p.DefaultSweepConfig()
	p2pBase.Reps = 2
	probes := []int{1, 4, 16}
	for _, workers := range []int{1, runtime.NumCPU()} {
		runner := experiment.Runner{Workers: workers}
		b.Run(fmt.Sprintf("watermark-noise/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sw := watermark.NoiseSweep(wmBase, 2, int64(i+1), noises)
				if _, err := runner.Run(context.Background(), sw); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("p2p-probes/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := p2pBase
				sc.Seed = int64(i + 1)
				if _, err := runner.Run(context.Background(), p2p.ProbeSweep(sc, probes)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLineup (E3 extension): identify the downloader among K
// candidates — the paper's situation one in its investigative shape.
func BenchmarkLineup(b *testing.B) {
	for _, k := range []int{2, 8} {
		b.Run(fmt.Sprintf("candidates=%d", k), func(b *testing.B) {
			lc := watermark.DefaultLineupConfig()
			lc.Suspects = k
			lc.Bits = 2
			for i := 0; i < b.N; i++ {
				lc.Seed = int64(i + 1)
				lc.Guilty = i % k
				res, err := watermark.RunLineup(lc)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Correct {
					b.Logf("trial %d misidentified (scores %v)", i, res.Scores)
				}
			}
		})
	}
}
